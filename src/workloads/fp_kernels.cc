/**
 * @file
 * The ten SPECfp'95-like kernels. FP codes in Table 1 share a profile:
 * many loads, few stores, long floating-point latencies feeding those
 * stores (which is why their false-dependence fractions in Table 3 are
 * so high: any in-flight store blocks a swarm of unrelated loads under
 * NAS/NO). Each kernel below reproduces one program's variant of that
 * profile plus its characteristic recurrence structure.
 */

#include "workloads/kernels.hh"

#include <vector>

#include "base/random.hh"
#include "isa/builder.hh"

namespace cwsim
{
namespace workloads
{

namespace
{

/** Fill @p words doubles starting at @p base with values in [lo, hi). */
void
fillDoubles(ProgramBuilder &b, Addr base, unsigned count, double lo,
            double hi, uint64_t seed)
{
    Random rng(seed);
    for (unsigned i = 0; i < count; ++i)
        b.dataF64(base + 8 * i, lo + (hi - lo) * rng.real());
}

} // anonymous namespace

// ---------------------------------------------------------------------
// 101.tomcatv — 2D mesh relaxation: a 5-point stencil with coefficient
// loads and an intra-row recurrence. Target: 31.9% / 8.8%.
// ---------------------------------------------------------------------

Program
buildTomcatv(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned width = 64;
    constexpr unsigned height = 48;
    Addr grid = b.dataAlloc(8 * width * (height + 2));
    Addr gnew = b.dataAlloc(8 * width * (height + 2));
    Addr coef = b.dataAlloc(8 * width);
    fillDoubles(b, grid, width * (height + 2), 0.5, 2.0, 0x101);
    fillDoubles(b, coef, width, 0.1, 0.9, 0x1011);

    const RegId p = ir(1), pc_ = ir(2), col = ir(3), row = ir(4),
                tmp = ir(5), iters = ir(6), pn_ = ir(7);
    const RegId fc = fr(0), fn = fr(1), fs = fr(2), fw = fr(3),
                fe = fr(4), fk = fr(5), facc = fr(6), fprev = fr(7);

    b.la(p, grid + 8 * width); // first interior row
    b.la(pn_, gnew + 8 * width);
    b.la(pc_, coef);
    b.addi(row, reg_zero, 1);
    b.addi(col, reg_zero, 1);
    b.li32(iters, static_cast<uint32_t>(scale / 23));

    auto loop = b.hereLabel();
    auto no_wrap = b.newLabel();

    b.ld_f(fc, p, 0);                       // loads 1..6
    b.ld_f(fw, p, -8);
    b.ld_f(fe, p, 8);
    b.ld_f(fn, p, -8 * width);
    b.ld_f(fs, p, 8 * width);
    b.ld_f(fk, pc_, 0);
    b.ld_f(fn, pc_, 8);                     // load 7: second coeff
    b.fadd_d(facc, fn, fs);                 // fp 1..7
    b.fadd_d(facc, facc, fw);
    b.fadd_d(facc, facc, fe);
    b.fmul_d(facc, facc, fk);
    b.fsub_d(facc, facc, fc);
    b.fadd_d(fprev, fprev, facc);           // row recurrence (register)
    b.fmul_d(facc, facc, fk);
    b.sd_f(facc, pn_, 0);                   // store 1 (new grid)
    b.sd_f(fprev, pn_, 8 * width * height); // store 2 (residual row)
    b.addi(p, p, 8);                        // 1
    b.addi(pn_, pn_, 8);                    // 1
    b.addi(pc_, pc_, 8);                    // 1
    b.addi(col, col, 1);                    // 1
    b.slti(tmp, col, width - 1);            // 1
    b.bne(tmp, reg_zero, no_wrap);          // branch
    // Next row.
    b.la(pc_, coef);
    b.addi(col, reg_zero, 1);
    b.addi(p, p, 16);
    b.addi(pn_, pn_, 16);
    b.addi(row, row, 1);
    b.slti(tmp, row, height);
    b.bne(tmp, reg_zero, no_wrap);
    b.la(p, grid + 8 * width);
    b.la(pn_, gnew + 8 * width);
    b.addi(row, reg_zero, 1);
    b.bind(no_wrap);
    b.addi(iters, iters, -1);               // 1
    b.bne(iters, reg_zero, loop);           // 1
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 102.swim — shallow-water equations: three coupled field arrays read
// with a stencil, one written per point. Target: 27.0% / 6.6%.
// ---------------------------------------------------------------------

Program
buildSwim(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned width = 64;
    constexpr unsigned rows = 48;
    Addr u = b.dataAlloc(8 * width * rows);
    Addr v = b.dataAlloc(8 * width * rows);
    Addr pfield = b.dataAlloc(8 * width * rows);
    Addr unew = b.dataAlloc(8 * width * rows);
    fillDoubles(b, u, width * rows, -1.0, 1.0, 0x102);
    fillDoubles(b, v, width * rows, -1.0, 1.0, 0x1021);
    fillDoubles(b, pfield, width * rows, 1.0, 2.0, 0x1022);

    const RegId pu = ir(1), pv = ir(2), pp = ir(3), pn = ir(4),
                tmp = ir(5), iters = ir(6), col = ir(7);
    const RegId f0 = fr(0), f1 = fr(1), f2 = fr(2), f3 = fr(3),
                f4 = fr(4), f5 = fr(5), f6 = fr(6), f7 = fr(7),
                facc = fr(8), fhalf = fr(9);

    Addr half = b.dataAlloc(8);
    b.dataF64(half, 0.5);
    b.la(tmp, half);
    b.ld_f(fhalf, tmp, 0);

    b.la(pu, u + 8 * width);
    b.la(pv, v + 8 * width);
    b.la(pp, pfield + 8 * width);
    b.la(pn, unew + 8 * width);
    b.addi(col, reg_zero, 0);
    b.li32(iters, static_cast<uint32_t>(scale / 31));

    auto loop = b.hereLabel();
    auto no_wrap = b.newLabel();

    b.ld_f(f0, pu, 0);                      // loads 1..8
    b.ld_f(f1, pu, 8);
    b.ld_f(f2, pu, -8 * width);
    b.ld_f(f3, pv, 0);
    b.ld_f(f4, pv, 8);
    b.ld_f(f5, pp, 0);
    b.ld_f(f6, pp, 8);
    b.ld_f(f7, pp, 8 * width);
    b.fadd_d(facc, f0, f1);                 // fp 1..11
    b.fmul_d(facc, facc, fhalf);
    b.fadd_d(f2, f2, f3);
    b.fmul_d(f2, f2, fhalf);
    b.fadd_d(f4, f4, f5);
    b.fsub_d(f6, f6, f7);
    b.fmul_d(f4, f4, f6);
    b.fadd_d(facc, facc, f2);
    b.fadd_d(facc, facc, f4);
    b.fmul_d(facc, facc, fhalf);
    b.fsub_d(facc, facc, f0);
    b.sd_f(facc, pn, 0);                    // store 1
    b.sd_f(f4, pn, 8 * width);              // store 2 (next-row seed)
    b.addi(pu, pu, 8);                      // 4 pointer bumps
    b.addi(pv, pv, 8);
    b.addi(pp, pp, 8);
    b.addi(pn, pn, 8);
    b.addi(col, col, 1);                    // 1
    b.slti(tmp, col, width * (rows - 2));   // 1
    b.bne(tmp, reg_zero, no_wrap);          // branch
    b.la(pu, u + 8 * width);
    b.la(pv, v + 8 * width);
    b.la(pp, pfield + 8 * width);
    b.la(pn, unew + 8 * width);
    b.addi(col, reg_zero, 0);
    b.bind(no_wrap);
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 103.su2cor — lattice gauge gather: an index load feeds a dependent
// data load (addresses computed at run time from loaded values), then a
// short FP chain. Target: 33.8% / 10.1%.
// ---------------------------------------------------------------------

Program
buildSu2cor(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned sites = 4096;
    Addr idx = b.dataAlloc(4 * sites);
    Addr field = b.dataAlloc(8 * (sites + 5));
    Addr out = b.dataAlloc(8 * (sites + 1));
    Random rng(0x103);
    // Gather indices with strong spatial locality (nearest-neighbour
    // lattice links): updates to a gathered cell are frequently
    // re-gathered while still in flight.
    for (unsigned i = 0; i < sites; ++i) {
        uint32_t target;
        if (rng.chance(0.8)) {
            target = static_cast<uint32_t>(
                (i + rng.below(8)) % sites);
        } else {
            target = static_cast<uint32_t>(rng.below(sites));
        }
        b.dataW32(idx + 4 * i, target);
    }
    fillDoubles(b, field, sites + 5, 0.2, 1.8, 0x1031);

    const RegId p_idx = ir(1), p_f = ir(2), p_out = ir(3), k = ir(4),
                tmp = ir(5), iters = ir(6), pos = ir(7);
    const RegId fa = fr(0), fb = fr(1), fc = fr(2), facc = fr(3);

    b.la(p_idx, idx);
    b.la(p_f, field);
    b.la(p_out, out);
    b.mv(pos, reg_zero);
    b.li32(iters, static_cast<uint32_t>(scale / 30));

    auto loop = b.hereLabel();
    b.slli(tmp, pos, 2);                    // 1
    b.add(tmp, p_idx, tmp);                 // 1
    b.lw(k, tmp, 0);                        // load 1: gather index
    b.slli(k, k, 3);                        // 1
    b.add(k, p_f, k);                       // 1
    b.ld_f(fa, k, 0);                       // load 2: gathered datum
    b.ld_f(fc, k, 8);                       // load 3: gathered pair
    b.slli(tmp, pos, 3);                    // 1
    b.add(tmp, p_f, tmp);                   // 1
    b.ld_f(fb, tmp, 0);                     // load 4: streaming datum
    b.fmul_d(facc, fa, fb);                 // fp
    b.ld_f(fb, tmp, 8);                     // load 5
    b.ld_f(fa, tmp, 16);                    // load 6
    b.fadd_d(facc, facc, fc);               // fp
    b.fmul_d(fb, fb, fa);                   // fp
    b.ld_f(fc, tmp, 24);                    // load 7
    b.ld_f(fa, tmp, 32);                    // load 8
    b.fadd_d(facc, facc, fb);               // fp
    b.fmul_d(fc, fc, fa);                   // fp
    b.fadd_d(facc, facc, fc);               // fp
    auto no_update = b.newLabel();
    b.andi(tmp, pos, 15);                   // 1
    b.bne(tmp, reg_zero, no_update);        // branch
    // Occasionally update the gauge field in place; later nearby
    // gathers can hit this while it is still in flight.
    b.sd_f(facc, k, 0);
    b.bind(no_update);
    b.slli(tmp, pos, 3);                    // 1
    b.add(tmp, p_out, tmp);                 // 1
    b.sd_f(facc, tmp, 0);                   // store 1
    b.sd_f(fb, tmp, 8);                     // store 2
    b.addi(pos, pos, 1);                    // 1
    b.andi(pos, pos, sites - 1);            // 1
    b.addi(iters, iters, -1);               // 1
    b.bne(iters, reg_zero, loop);           // 1
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 104.hydro2d — hydrodynamics stencil with a divide in the chain (long
// latencies feeding stores). Target: 29.7% / 8.2%.
// ---------------------------------------------------------------------

Program
buildHydro2d(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned width = 64;
    constexpr unsigned rows = 48;
    Addr rho = b.dataAlloc(8 * width * rows);
    Addr pres = b.dataAlloc(8 * width * rows);
    Addr flux = b.dataAlloc(8 * width * rows);
    Addr mass = b.dataAlloc(8);
    fillDoubles(b, rho, width * rows, 1.0, 3.0, 0x104);
    fillDoubles(b, pres, width * rows, 0.5, 1.5, 0x1041);
    b.dataF64(mass, 0.0);

    const RegId pr = ir(1), pp = ir(2), pf = ir(3), tmp = ir(4),
                iters = ir(5), col = ir(6), pm = ir(7);
    const RegId f0 = fr(0), f1 = fr(1), f2 = fr(2), f3 = fr(3),
                f4 = fr(4), facc = fr(5);

    b.la(pr, rho + 8 * width);
    b.la(pp, pres + 8 * width);
    b.la(pf, flux + 8 * width);
    b.la(pm, mass);
    b.addi(col, reg_zero, 0);
    b.li32(iters, static_cast<uint32_t>(scale / 18));

    auto loop = b.hereLabel();
    auto no_wrap = b.newLabel();

    b.ld_f(f0, pr, 0);                      // loads 1..5
    b.ld_f(f1, pr, 8);
    b.ld_f(f2, pp, 0);
    b.ld_f(f3, pp, 8);
    b.ld_f(f4, pr, -8 * width);
    b.fadd_d(facc, f0, f1);                 // fp chain with a divide
    b.fadd_d(f2, f2, f3);
    b.fdiv_d(facc, f2, facc);
    b.fadd_d(facc, facc, f4);
    b.sd_f(facc, pf, 0);                    // store 1: flux out
    // Every 4th column updates the global mass accumulator: an RMW of
    // one cell whose store data trails the divide — hydro2d's 5.5% NAV
    // miss-speculation rate in Table 4. Because consecutive dynamic
    // instances of the pair ARE the dependence, SYNC synchronizes with
    // exactly the right store instance.
    auto no_mass = b.newLabel();
    b.andi(tmp, col, 3);
    b.bne(tmp, reg_zero, no_mass);
    b.ld_f(f1, pm, 0);
    b.fadd_d(f1, f1, facc);
    b.sd_f(f1, pm, 0);                      // store 2 (1/4 iters)
    b.bind(no_mass);
    b.addi(pr, pr, 8);
    b.addi(pp, pp, 8);
    b.addi(pf, pf, 8);
    b.addi(col, col, 1);
    b.slti(tmp, col, width * (rows - 2));
    b.bne(tmp, reg_zero, no_wrap);
    b.la(pr, rho + 8 * width);
    b.la(pp, pres + 8 * width);
    b.la(pf, flux + 8 * width);
    b.addi(col, reg_zero, 0);
    b.bind(no_wrap);
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 107.mgrid — 3D multigrid relaxation: a 14-load stencil burst per
// single store; the most load-dominated program in Table 1.
// Target: 46.6% / 3.0%.
// ---------------------------------------------------------------------

Program
buildMgrid(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned dim = 16;   // 16^3 grid
    constexpr unsigned plane = dim * dim;
    Addr grid = b.dataAlloc(8 * dim * dim * dim);
    Addr out = b.dataAlloc(8 * dim * dim * dim);
    fillDoubles(b, grid, dim * dim * dim, 0.1, 1.1, 0x107);

    const RegId p = ir(1), po = ir(2), tmp = ir(3), iters = ir(4),
                pos = ir(5);
    const RegId facc = fr(0), f1 = fr(1), f2 = fr(2), f3 = fr(3);

    b.la(p, grid + 8 * (plane + dim + 1));
    b.la(po, out + 8 * (plane + dim + 1));
    b.mv(pos, reg_zero);
    b.li32(iters, static_cast<uint32_t>(scale / 40));

    auto loop = b.hereLabel();
    auto no_wrap = b.newLabel();

    // 14-point neighbourhood (pairs summed as they arrive).
    b.ld_f(facc, p, 0);                     // loads 1..14
    b.ld_f(f1, p, 8);
    b.ld_f(f2, p, -8);
    b.fadd_d(f1, f1, f2);
    b.ld_f(f2, p, 8 * dim);
    b.ld_f(f3, p, -8 * dim);
    b.fadd_d(f2, f2, f3);
    b.fadd_d(facc, facc, f1);
    b.ld_f(f1, p, 8 * plane);
    b.ld_f(f3, p, -8 * plane);
    b.fadd_d(f1, f1, f3);
    b.fadd_d(facc, facc, f2);
    b.ld_f(f2, p, 8 * (dim + 1));
    b.ld_f(f3, p, -8 * (dim + 1));
    b.fadd_d(f2, f2, f3);
    b.fadd_d(facc, facc, f1);
    b.ld_f(f1, p, 8 * (plane + 1));
    b.ld_f(f3, p, -8 * (plane + 1));
    b.fadd_d(f1, f1, f3);
    b.fadd_d(facc, facc, f2);
    b.ld_f(f2, p, 8 * (plane + dim));
    b.ld_f(f3, p, -8 * (plane + dim));
    b.fadd_d(f2, f2, f3);
    b.fadd_d(facc, facc, f1);
    b.ld_f(f1, p, 8 * (plane - dim));
    b.ld_f(f3, p, -8 * (plane - dim));
    b.fadd_d(f1, f1, f3);
    b.fadd_d(facc, facc, f2);
    b.ld_f(f2, p, 8 * (dim - 1));
    b.ld_f(f3, p, -8 * (dim - 1));
    b.fadd_d(f2, f2, f3);
    b.fadd_d(facc, facc, f1);
    b.ld_f(f1, p, 8 * (plane + dim + 1));
    b.ld_f(f3, p, -8 * (plane + dim + 1));
    b.fadd_d(f1, f1, f3);
    b.fadd_d(facc, facc, f2);
    b.fadd_d(facc, facc, f1);
    b.sd_f(facc, po, 0);                    // the lone store
    b.addi(p, p, 8);
    b.addi(po, po, 8);
    b.addi(pos, pos, 1);
    b.slti(tmp, pos, plane * (dim - 2) - 2 * dim);
    b.bne(tmp, reg_zero, no_wrap);
    b.la(p, grid + 8 * (plane + dim + 1));
    b.la(po, out + 8 * (plane + dim + 1));
    b.mv(pos, reg_zero);
    b.bind(no_wrap);
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 110.applu — SSOR: a first-order recurrence THROUGH MEMORY
// (x[i] = (b[i] - l[i] * x[i-1]) / d[i]), the store->load distance of
// one short iteration. Target: 31.4% / 7.9%.
// ---------------------------------------------------------------------

Program
buildApplu(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned n = 2048;
    Addr x = b.dataAlloc(8 * (n + 1));
    Addr rhs = b.dataAlloc(8 * n);
    Addr low = b.dataAlloc(8 * n);
    Addr diag = b.dataAlloc(8 * n);
    fillDoubles(b, rhs, n, 0.5, 1.5, 0x110);
    fillDoubles(b, low, n, 0.01, 0.2, 0x1101);
    fillDoubles(b, diag, n, 1.0, 2.0, 0x1102);
    b.dataF64(x, 1.0);

    const RegId px = ir(1), pb = ir(2), pl = ir(3), pd = ir(4),
                tmp = ir(5), iters = ir(6), col = ir(7);
    const RegId fx = fr(0), fb = fr(1), fl = fr(2), fd = fr(3),
                fo = fr(4), facc = fr(5);

    b.la(px, x);
    b.la(pb, rhs);
    b.la(pl, low);
    b.la(pd, diag);
    b.addi(col, reg_zero, 0);
    b.ld_f(fx, px, 0); // x[0] seeds the register-carried recurrence
    b.li32(iters, static_cast<uint32_t>(scale / 20));

    auto loop = b.hereLabel();
    auto no_wrap = b.newLabel();

    // The SSOR recurrence itself is register-carried (as compiled code
    // keeps x[i-1] live); the memory dependence is the residual pass
    // re-reading x[i-8] — eight iterations (~136 instructions) back, so
    // it flickers in and out of the 128-entry window.
    b.ld_f(fb, pb, 0);                      // load 1
    b.ld_f(fl, pl, 0);                      // load 2
    b.ld_f(fd, pd, 0);                      // load 3
    b.fmul_d(fx, fx, fl);                   // fp
    b.fsub_d(fx, fb, fx);                   // fp
    b.fdiv_d(fx, fx, fd);                   // fp (long latency)
    b.sd_f(fx, px, 8);                      // store: x[i]
    b.ld_f(fo, px, -56);                    // load 4: x[i-8] residual
    b.fadd_d(facc, facc, fo);               // fp
    b.ld_f(fo, pl, -8);                     // load 5: band re-read
    b.fadd_d(facc, facc, fo);               // fp
    b.ld_f(fo, pb, 8);                      // load 6: next rhs
    b.fadd_d(facc, facc, fo);               // fp
    b.sd_f(facc, pd, -8);                   // store 2: residual out
    b.addi(px, px, 8);
    b.addi(pb, pb, 8);
    b.addi(pl, pl, 8);
    b.addi(pd, pd, 8);
    b.addi(col, col, 1);
    b.slti(tmp, col, n - 1);
    b.bne(tmp, reg_zero, no_wrap);
    b.la(px, x);
    b.la(pb, rhs);
    b.la(pl, low);
    b.la(pd, diag);
    b.addi(col, reg_zero, 0);
    b.ld_f(fx, px, 0);
    b.bind(no_wrap);
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 125.turb3d — FFT-style in-place butterflies: load a pair, combine
// with a twiddle factor, store the pair back. The in-place update makes
// later passes load what earlier passes stored at varying strides.
// Target: 21.3% / 14.6%.
// ---------------------------------------------------------------------

Program
buildTurb3d(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned n = 4096;
    Addr data = b.dataAlloc(8 * n);
    Addr twiddle = b.dataAlloc(8 * 65);
    Addr scratch = b.dataAlloc(8 * 64);
    fillDoubles(b, data, n, -1.0, 1.0, 0x125);
    fillDoubles(b, twiddle, 65, 0.5, 1.0, 0x1251);

    const RegId pa = ir(1), pw = ir(2), stride = ir(3), tmp = ir(4),
                iters = ir(5), pos = ir(6), pb_ = ir(7), widx = ir(8),
                psc = ir(9);
    const RegId fa = fr(0), fb = fr(1), fw = fr(2), fs = fr(3),
                fd = fr(4);

    b.la(pa, data);
    b.la(pw, twiddle);
    b.la(psc, scratch);
    b.addi(stride, reg_zero, 8 * 8); // 8 elements
    b.mv(pos, reg_zero);
    b.mv(widx, reg_zero);
    b.li32(iters, static_cast<uint32_t>(scale / 21));

    auto loop = b.hereLabel();
    auto no_wrap = b.newLabel();

    b.add(pb_, pa, stride);                 // 1
    b.ld_f(fa, pa, 0);                      // load 1
    b.ld_f(fb, pb_, 0);                     // load 2
    b.slli(tmp, widx, 3);                   // 1
    b.add(tmp, pw, tmp);                    // 1
    b.ld_f(fw, tmp, 0);                     // load 3: twiddle (real)
    b.ld_f(fs, tmp, 8);                     // load 4: twiddle (imag)
    b.fmul_d(fb, fb, fw);                   // fp 1..5
    b.fmul_d(fw, fa, fs);
    b.fadd_d(fs, fa, fb);
    b.fsub_d(fd, fa, fb);
    b.fmul_d(fd, fd, fw);
    b.sd_f(fs, pa, 0);                      // store 1 (in place)
    b.sd_f(fd, pb_, 0);                     // store 2 (in place)
    b.slli(pb_, widx, 3);                   // 1
    b.add(pb_, psc, pb_);                   // 1
    b.sd_f(fw, pb_, 0);                     // store 3 (scratch ring)
    b.addi(pa, pa, 8);                      // 1
    b.addi(widx, widx, 1);                  // 1
    b.andi(widx, widx, 63);                 // 1
    b.addi(pos, pos, 1);                    // 1
    b.slti(tmp, pos, (n - 16));             // 1
    b.bne(tmp, reg_zero, no_wrap);          // branch
    b.la(pa, data);
    b.mv(pos, reg_zero);
    b.bind(no_wrap);
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 141.apsi — pollutant-transport column sweeps: stencil loads, an
// integer table lookup, moderate stores. Target: 31.4% / 13.4%.
// ---------------------------------------------------------------------

Program
buildApsi(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned width = 64;
    constexpr unsigned rows = 48;
    Addr conc = b.dataAlloc(8 * width * rows);
    Addr wind = b.dataAlloc(8 * width * rows);
    Addr next = b.dataAlloc(8 * width * rows);
    Addr total = b.dataAlloc(8);
    fillDoubles(b, conc, width * rows, 0.0, 1.0, 0x141);
    fillDoubles(b, wind, width * rows, -0.5, 0.5, 0x1411);

    const RegId pcn = ir(1), pwd = ir(2), pnx = ir(3), tmp = ir(4),
                iters = ir(5), col = ir(6), pt_ = ir(7);
    const RegId f0 = fr(0), f1 = fr(1), f2 = fr(2), f3 = fr(3),
                facc = fr(4);

    b.la(pcn, conc + 8 * width);
    b.la(pwd, wind + 8 * width);
    b.la(pnx, next + 8 * width);
    b.la(pt_, total);
    b.addi(col, reg_zero, 0);
    b.li32(iters, static_cast<uint32_t>(scale / 20));

    auto loop = b.hereLabel();
    auto no_wrap = b.newLabel();

    b.ld_f(f0, pcn, 0);                     // loads 1..6
    b.ld_f(f1, pcn, 8);
    b.ld_f(f2, pcn, -8 * width);
    b.ld_f(f3, pwd, 0);
    b.ld_f(facc, pwd, 8);
    b.ld_f(f1, pcn, 8 * width);
    b.fadd_d(f0, f0, f1);                   // fp
    b.fmul_d(f2, f2, f3);
    b.fadd_d(f0, f0, f2);
    b.fmul_d(f0, f0, facc);
    b.fadd_d(f2, f2, f0);
    b.sd_f(f0, pnx, 0);                     // store 1
    b.sd_f(f3, pnx, 8 * width);             // store 2 (wind residue)
    // Every 4th column: pollutant-total RMW through one cell, with the
    // store data trailing the FP chain (paper: apsi NAV rate 2.1%).
    auto no_total = b.newLabel();
    b.andi(tmp, col, 3);
    b.bne(tmp, reg_zero, no_total);
    b.ld_f(f3, pt_, 0);
    b.fadd_d(f3, f3, f0);
    b.sd_f(f3, pt_, 0);                     // store 3 (1/4 iters)
    b.bind(no_total);
    b.addi(pcn, pcn, 8);
    b.addi(pwd, pwd, 8);
    b.addi(pnx, pnx, 8);
    b.addi(col, col, 1);
    b.slti(tmp, col, width * (rows - 3));
    b.bne(tmp, reg_zero, no_wrap);
    b.la(pcn, conc + 8 * width);
    b.la(pwd, wind + 8 * width);
    b.la(pnx, next + 8 * width);
    b.addi(col, reg_zero, 0);
    b.bind(no_wrap);
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 145.fpppp — electron-integral inner blocks: enormous straight-line
// stretches that load a slab of temporaries, run FP chains, and store
// several back to the SAME temp slab every "block" — so every store is
// shortly followed by loads of nearby addresses (FD = 88.7% in Table
// 3, and the AS/NAV slowdown case). Target: 48.8% / 17.5%.
// ---------------------------------------------------------------------

Program
buildFpppp(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned temps = 256;
    Addr slab = b.dataAlloc(8 * temps);
    fillDoubles(b, slab, temps, 0.3, 1.7, 0x145);

    const RegId pt = ir(1), iters = ir(2), col = ir(3), tmp = ir(4);
    const RegId f0 = fr(0), f1 = fr(1), f2 = fr(2), f3 = fr(3),
                f4 = fr(4), f5 = fr(5), f6 = fr(6), f7 = fr(7),
                f8 = fr(8), f9 = fr(9), f10 = fr(10), f11 = fr(11),
                f12 = fr(12), f13 = fr(13);

    b.la(pt, slab);
    b.addi(col, reg_zero, 0);
    b.li32(iters, static_cast<uint32_t>(scale / 33));

    auto loop = b.hereLabel();
    auto no_wrap = b.newLabel();
    // 14 loads from the advancing temp slab. The stores below land at
    // +136..+168, which these loads reach 4-8 blocks later — true
    // dependences hovering around the window boundary.
    b.ld_f(f0, pt, 0);
    b.ld_f(f1, pt, 8);
    b.ld_f(f2, pt, 16);
    b.ld_f(f3, pt, 24);
    b.ld_f(f4, pt, 32);
    b.ld_f(f5, pt, 40);
    b.ld_f(f6, pt, 48);
    b.ld_f(f7, pt, 56);
    b.ld_f(f8, pt, 64);
    b.ld_f(f9, pt, 72);
    b.ld_f(f10, pt, 80);
    b.ld_f(f11, pt, 88);
    b.ld_f(f12, pt, 96);
    b.ld_f(f13, pt, 104);
    // 8 FP ops (two chains).
    b.fmul_d(f0, f0, f1);
    b.fadd_d(f0, f0, f2);
    b.fmul_d(f3, f3, f4);
    b.fadd_d(f3, f3, f5);
    b.fmul_d(f6, f6, f7);
    b.fadd_d(f0, f0, f3);
    b.fadd_d(f6, f6, f8);
    b.fmul_d(f9, f9, f10);
    // 5 stores back into the slab ahead of the read window.
    b.sd_f(f0, pt, 136);
    b.sd_f(f3, pt, 144);
    b.sd_f(f6, pt, 152);
    b.sd_f(f9, pt, 160);
    b.sd_f(f11, pt, 168);
    b.addi(pt, pt, 8);
    b.addi(col, col, 1);
    b.slti(tmp, col, temps - 24);
    b.bne(tmp, reg_zero, no_wrap);
    b.la(pt, slab);
    b.addi(col, reg_zero, 0);
    b.bind(no_wrap);
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 146.wave5 — particle-in-cell push: per particle, load position and
// velocity, gather the field at its cell, update, scatter back.
// Target: 30.2% / 13.0%.
// ---------------------------------------------------------------------

Program
buildWave5(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned particles = 2048;
    constexpr unsigned cells = 512;
    Addr posn = b.dataAlloc(16 * particles);
    Addr vel = b.dataAlloc(16 * particles);
    Addr cell_of = b.dataAlloc(4 * particles);
    Addr field = b.dataAlloc(8 * (cells + 2));
    fillDoubles(b, posn, 2 * particles, 0.0, 1.0, 0x146);
    fillDoubles(b, vel, 2 * particles, -0.1, 0.1, 0x1461);
    fillDoubles(b, field, cells + 2, -0.2, 0.2, 0x1462);
    Random rng(0x1463);
    // Particles are spatially sorted (as after a PIC reorder pass):
    // runs of four consecutive particles share a cell, so a deposit is
    // often re-gathered by the very next particles.
    for (unsigned i = 0; i < particles; ++i) {
        uint32_t cell = (i / 4) % cells;
        if (rng.chance(0.2))
            cell = static_cast<uint32_t>(rng.below(cells));
        b.dataW32(cell_of + 4 * i, cell);
    }

    const RegId pp = ir(1), pv = ir(2), pcell = ir(3), pf = ir(4),
                k = ir(5), tmp = ir(6), iters = ir(7), idx = ir(8);
    const RegId fp_ = fr(0), fv = fr(1), fe0 = fr(2), fe1 = fr(3),
                fe2 = fr(4), fpy = fr(5), fvy = fr(6);

    b.la(pp, posn);
    b.la(pv, vel);
    b.la(pcell, cell_of);
    b.la(pf, field);
    b.mv(idx, reg_zero);
    b.li32(iters, static_cast<uint32_t>(scale / 28));

    auto loop = b.hereLabel();
    auto no_wrap = b.newLabel();
    b.lw(k, pcell, 0);                      // load 1: cell index
    b.slli(k, k, 3);                        // 1
    b.add(k, pf, k);                        // 1
    b.ld_f(fe0, k, 0);                      // loads 2..4: field gather
    b.ld_f(fe1, k, 8);
    b.ld_f(fe2, k, 16);
    b.ld_f(fp_, pp, 0);                     // loads 5..8: particle state
    b.ld_f(fpy, pp, 8);
    b.ld_f(fv, pv, 0);
    b.ld_f(fvy, pv, 8);
    b.fadd_d(fe0, fe0, fe1);                // fp 1..6
    b.fadd_d(fe0, fe0, fe2);
    b.fadd_d(fv, fv, fe0);                  // accelerate
    b.fadd_d(fvy, fvy, fe1);
    b.fadd_d(fp_, fp_, fv);                 // advance
    b.fadd_d(fpy, fpy, fvy);
    b.sd_f(fv, pv, 0);                      // stores 1..4: scatter
    b.sd_f(fvy, pv, 8);
    b.sd_f(fp_, pp, 0);
    b.sd_f(fpy, pp, 8);
    auto no_deposit = b.newLabel();
    b.andi(tmp, idx, 7);
    b.bne(tmp, reg_zero, no_deposit);
    // Charge deposit back into the field grid; later gathers to the
    // same cell form occasional short dependences (paper: 2.0%).
    b.sd_f(fe0, k, 0);
    b.bind(no_deposit);
    b.addi(pcell, pcell, 4);                // 1
    b.addi(pp, pp, 16);                     // 1
    b.addi(pv, pv, 16);                     // 1
    b.addi(idx, idx, 1);                    // 1
    b.slti(tmp, idx, particles);            // 1
    b.bne(tmp, reg_zero, no_wrap);          // branch
    b.la(pp, posn);
    b.la(pv, vel);
    b.la(pcell, cell_of);
    b.mv(idx, reg_zero);
    b.bind(no_wrap);
    b.addi(iters, iters, -1);               // 1
    b.bne(iters, reg_zero, loop);           // 1
    b.halt();
    return b.build();
}

} // namespace workloads
} // namespace cwsim
