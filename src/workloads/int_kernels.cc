/**
 * @file
 * The eight SPECint'95-like kernels. Each loop body is annotated with
 * its approximate dynamic instruction mix; the per-kernel targets are
 * the paper's Table 1 load/store percentages.
 */

#include "workloads/kernels.hh"

#include <utility>
#include <vector>

#include "base/random.hh"
#include "isa/builder.hh"

namespace cwsim
{
namespace workloads
{

namespace
{

/** Emit a 3-op xorshift step on @p state using @p tmp as scratch. */
void
emitXorshift(ProgramBuilder &b, RegId state, RegId tmp)
{
    b.slli(tmp, state, 13);
    b.xor_(state, state, tmp);
    b.srli(tmp, state, 17);
    b.xor_(state, state, tmp);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// 099.go — board evaluation: byte loads from a board, data-dependent
// branches, occasional influence-map stores. Target: 20.9% / 7.3%.
// ---------------------------------------------------------------------

Program
buildGo(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned board_bytes = 2048;
    Addr board = b.dataAlloc(board_bytes + 64);
    Addr influence = b.dataAlloc(4 * board_bytes);
    Addr ko_cell = b.dataAlloc(4);
    Random rng(0x99);
    for (unsigned i = 0; i < board_bytes; ++i)
        b.dataW8(board + i, static_cast<uint8_t>(rng.below(3)));

    const RegId p_board = ir(1), p_infl = ir(2), tmp = ir(3),
                pos = ir(4), cell = ir(5), n1 = ir(6), n2 = ir(7),
                n3 = ir(8), n4 = ir(9), score = ir(10), t2 = ir(11),
                iters = ir(12), p_ko = ir(13), state = ir(20);

    b.la(p_board, board);
    b.la(p_infl, influence);
    b.la(p_ko, ko_cell);
    b.li32(state, 0x12345);
    b.li32(iters, static_cast<uint32_t>(scale / 25));

    auto loop = b.hereLabel();
    auto skip_store = b.newLabel();
    auto skip_flip = b.newLabel();

    emitXorshift(b, state, tmp);               // 4 ALU
    b.andi(pos, state, board_bytes - 1);       // 1
    b.add(tmp, p_board, pos);                  // 1
    b.lb(cell, tmp, 0);                        // load 1
    b.lb(n1, tmp, 1);                          // load 2
    b.lb(n2, tmp, 2);                          // load 3 (padded board)
    b.lb(n3, tmp, 32);                         // load 4
    b.lb(n4, tmp, 33);                         // load 5
    b.add(score, n1, n2);                      // 1
    b.add(t2, n3, n4);                         // 1
    b.add(score, score, t2);                   // 1
    b.add(score, score, cell);                 // 1
    b.slli(t2, pos, 2);                        // 1
    b.add(t2, p_infl, t2);                     // 1
    b.sw(score, t2, 0);                        // store 1
    b.slti(t2, score, 4);                      // 1
    b.bne(t2, reg_zero, skip_store);           // branch (data-dep)
    b.add(score, score, score);                // taken ~55%
    b.bind(skip_store);
    b.andi(t2, state, 1);                      // 1
    b.bne(t2, reg_zero, skip_flip);            // branch, taken 1/2
    b.sb(score, tmp, 1);                       // stores (1/4 iters)
    b.sb(cell, tmp, 32);
    // The "ko" state cell: a read-modify-write of one hot word whose
    // update data trails the evaluation — go's occasional naive
    // miss-speculation (paper: 2.5%).
    b.lw(t2, p_ko, 0);
    b.add(t2, t2, score);
    b.sw(t2, p_ko, 0);
    b.bind(skip_flip);
    b.addi(iters, iters, -1);                  // 1
    b.bne(iters, reg_zero, loop);              // loop branch
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 124.m88ksim — a CPU interpreter: fetch a synthetic instruction word,
// decode it, dispatch on the opcode, and execute against an in-memory
// register file (the classic read-modify-write dependence pattern).
// Target: 18.8% / 9.6%.
// ---------------------------------------------------------------------

Program
buildM88ksim(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned prog_words = 512;
    Addr guest_prog = b.dataAlloc(4 * prog_words);
    Addr regfile = b.dataAlloc(4 * 32);
    // Per-register condition flags: RMW conflicts arise only when
    // nearby guest instructions name the same destination (paper:
    // m88ksim NAV rate 1.0%).
    Addr psr = b.dataAlloc(4 * 32);
    Addr tracelog = b.dataAlloc(4 * prog_words);
    Random rng(0x124);
    for (unsigned i = 0; i < prog_words; ++i) {
        // op[31:28] rd[25:21] rs[20:16] rt[15:11] imm[7:0]
        uint32_t op = static_cast<uint32_t>(rng.below(4));
        uint32_t rd = static_cast<uint32_t>(rng.below(32));
        uint32_t rs = static_cast<uint32_t>(rng.below(32));
        uint32_t rt = static_cast<uint32_t>(rng.below(32));
        uint32_t w = (op << 28) | (rd << 21) | (rs << 16) | (rt << 11) |
                     static_cast<uint32_t>(rng.below(256));
        b.dataW32(guest_prog + 4 * i, w);
    }
    for (unsigned i = 0; i < 32; ++i)
        b.dataW32(regfile + 4 * i, static_cast<uint32_t>(rng.next()));

    const RegId p_prog = ir(1), p_rf = ir(2), gpc = ir(3), instr = ir(4),
                op = ir(5), rd = ir(6), rs = ir(7), rt = ir(8),
                va = ir(9), vb = ir(10), res = ir(11), tmp = ir(12),
                iters = ir(13), two = ir(14), three = ir(15),
                p_psr = ir(16), p_log = ir(17), old = ir(18),
                nexti = ir(19);

    b.la(p_prog, guest_prog);
    b.la(p_rf, regfile);
    b.la(p_psr, psr);
    b.la(p_log, tracelog);
    b.mv(gpc, reg_zero);
    b.addi(two, reg_zero, 2);
    b.addi(three, reg_zero, 3);
    b.li32(iters, static_cast<uint32_t>(scale / 36));

    auto loop = b.hereLabel();
    auto op_sub = b.newLabel();
    auto op_xor = b.newLabel();
    auto op_addi = b.newLabel();
    auto writeback = b.newLabel();

    // Fetch (plus a next-instruction prefetch, as m88ksim models a
    // pipelined target).
    b.slli(tmp, gpc, 2);                 // 1
    b.add(tmp, p_prog, tmp);             // 1
    b.lw(instr, tmp, 0);                 // load 1
    b.lw(nexti, tmp, 4);                 // load 2
    b.addi(gpc, gpc, 1);                 // 1
    b.andi(gpc, gpc, prog_words - 1);    // 1
    // Decode.
    b.srli(op, instr, 28);               // 1
    b.srli(rd, instr, 21);               // 1
    b.andi(rd, rd, 31);                  // 1
    b.srli(rs, instr, 16);               // 1
    b.andi(rs, rs, 31);                  // 1
    b.srli(rt, instr, 11);               // 1
    b.andi(rt, rt, 31);                  // 1
    // Operand fetch from the in-memory register file.
    b.slli(tmp, rs, 2);                  // 1
    b.add(tmp, p_rf, tmp);
    b.lw(va, tmp, 0);                    // load 2
    b.slli(tmp, rt, 2);
    b.add(tmp, p_rf, tmp);
    b.lw(vb, tmp, 0);                    // load 3
    // Dispatch.
    b.beq(op, reg_zero, op_addi);        // branch chain
    b.beq(op, two, op_sub);
    b.beq(op, three, op_xor);
    b.add(res, va, vb);                  // op 1: add
    b.j(writeback);
    b.bind(op_sub);
    b.sub(res, va, vb);
    b.j(writeback);
    b.bind(op_xor);
    b.xor_(res, va, vb);
    b.j(writeback);
    b.bind(op_addi);
    b.andi(tmp, instr, 255);
    b.add(res, va, tmp);
    b.bind(writeback);
    b.slli(tmp, rd, 2);                  // 1
    b.add(tmp, p_rf, tmp);               // 1
    b.lw(old, tmp, 0);                   // load 5: old dest value
    b.sw(res, tmp, 0);                   // store 1 (RMW with loads)
    // Per-register condition-code update (another RMW pair).
    b.slli(tmp, rd, 2);                  // 1
    b.add(tmp, p_psr, tmp);              // 1
    b.lw(old, tmp, 0);                   // load 6
    b.add(old, old, res);
    b.sw(old, tmp, 0);                   // store 2
    // Retirement trace ring.
    b.slli(old, gpc, 2);                 // 1
    b.add(old, p_log, old);              // 1
    b.sw(res, old, 0);                   // store 3
    b.xor_(res, res, nexti);             // keep the prefetch live
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 126.gcc — tree/list rewriting over an arena of 16-byte nodes: pointer
// walks, field reads, and frequent field writes. Target: 24.3% / 17.5%.
// ---------------------------------------------------------------------

Program
buildGcc(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned nodes = 1024;
    Addr arena = b.dataAlloc(16 * nodes);
    Random rng(0x126);
    // node: {val, next, flags, aux}; next pointers form a shuffled ring.
    std::vector<unsigned> order(nodes);
    for (unsigned i = 0; i < nodes; ++i)
        order[i] = i;
    for (unsigned i = nodes - 1; i > 0; --i) {
        unsigned j = static_cast<unsigned>(rng.below(i + 1));
        std::swap(order[i], order[j]);
    }
    for (unsigned i = 0; i < nodes; ++i) {
        Addr node = arena + 16 * order[i];
        Addr next = arena + 16 * order[(i + 1) % nodes];
        b.dataW32(node, static_cast<uint32_t>(rng.below(1000)));
        b.dataW32(node + 4, static_cast<uint32_t>(next));
        b.dataW32(node + 8, 0);
        b.dataW32(node + 12, static_cast<uint32_t>(rng.next()));
    }

    const RegId cur = ir(1), val = ir(2), flags = ir(3), tmp = ir(4),
                acc = ir(5), iters = ir(6), aux = ir(7), prev = ir(8);

    b.la(cur, arena);
    b.mv(prev, cur);
    b.mv(acc, reg_zero);
    b.li32(iters, static_cast<uint32_t>(scale / 16));

    auto loop = b.hereLabel();
    auto no_aux = b.newLabel();

    b.lw(val, cur, 0);                   // load 1
    b.lw(flags, cur, 8);                 // load 2
    b.add(acc, acc, val);                // 1
    b.addi(val, val, 7);                 // 1
    b.sw(val, cur, 0);                   // store 1 (rewrite field)
    b.addi(flags, flags, 1);             // 1
    b.sw(flags, cur, 8);                 // store 2 (mark)
    b.andi(tmp, val, 3);                 // 1
    b.bne(tmp, reg_zero, no_aux);        // branch, ~75% taken
    // Re-read the PREVIOUS node's value field — written one iteration
    // ago: a short recurring true dependence (paper: gcc 1.3%).
    b.lw(aux, prev, 0);                  // load (1/4 iters)
    b.xor_(aux, aux, acc);
    b.sw(aux, cur, 12);                  // store (1/4 iters)
    b.bind(no_aux);
    b.mv(prev, cur);                     // 1
    b.lw(cur, cur, 4);                   // load 3: pointer chase
    b.addi(iters, iters, -1);            // 1
    b.bne(iters, reg_zero, loop);        // 1
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 129.compress — LZW-flavoured hash-table read-modify-write: a rolling
// input byte stream hashed into a table that is probed and updated,
// plus an output byte stream. The table updates collide with later
// probes through the SAME static load/store pair — the pattern that
// makes naive speculation miss-speculate (paper: 7.8%, the worst) and
// that speculation/synchronization fixes. Target: 21.7% / 13.5%.
// ---------------------------------------------------------------------

Program
buildCompress(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned in_bytes = 4096;
    constexpr unsigned htab_entries = 128; // small -> real collisions
    Addr input = b.dataAlloc(in_bytes + 8);
    Addr htab = b.dataAlloc(4 * htab_entries);
    Addr codetab = b.dataAlloc(4 * htab_entries);
    Addr output = b.dataAlloc(in_bytes * 2);
    Addr checksum = b.dataAlloc(4);
    Random rng(0x129);
    for (unsigned i = 0; i < in_bytes; ++i) {
        // Skewed byte distribution: repetitive enough to "compress".
        b.dataW8(input + i, static_cast<uint8_t>(rng.below(12)));
    }

    const RegId p_in = ir(1), p_ht = ir(2), p_out = ir(3), ent = ir(4),
                c = ir(5), hash = ir(6), slot = ir(7), code = ir(8),
                tmp = ir(9), iters = ir(10), inpos = ir(11),
                freecode = ir(12), p_ct = ir(13), c2 = ir(14),
                cslot = ir(15), p_ck = ir(16);

    b.la(p_in, input);
    b.la(p_ht, htab);
    b.la(p_ct, codetab);
    b.la(p_out, output);
    b.la(p_ck, checksum);
    b.mv(inpos, reg_zero);
    b.addi(ent, reg_zero, 1);
    b.addi(freecode, reg_zero, 256);
    b.li32(iters, static_cast<uint32_t>(scale / 22));

    auto loop = b.hereLabel();
    auto hit = b.newLabel();
    auto cont = b.newLabel();

    // Next input digraph (rolling).
    b.add(tmp, p_in, inpos);             // 1
    b.lbu(c, tmp, 0);                    // load 1
    b.lbu(c2, tmp, 1);                   // load 2
    b.addi(inpos, inpos, 1);             // 1
    b.andi(inpos, inpos, in_bytes - 1);  // 1
    // Input-driven hash: the probe address is ready as soon as the
    // input bytes arrive, while the table UPDATE's data (ent) trails a
    // serial chain through the previous probe — exactly the race that
    // makes compress the worst naive-speculation offender in Table 4.
    b.slli(hash, c, 4);                  // 1
    b.xor_(hash, hash, c2);              // 1
    b.andi(hash, hash, htab_entries - 1);// 1
    b.slli(slot, hash, 2);               // 1
    b.add(cslot, p_ct, slot);            // 1
    b.add(slot, p_ht, slot);             // 1
    b.lw(code, slot, 0);                 // load 3: table probe
    b.lw(tmp, cslot, 0);                 // load 4: code lookup
    b.add(tmp, p_out, inpos);            // 1
    b.sb(code, tmp, 0);                  // store 1: emit code byte
    b.beq(code, ent, hit);               // branch
    // Miss: install a new code (RMW on the probed slots).
    b.addi(freecode, freecode, 1);       // 1
    b.sw(ent, slot, 0);                  // store 2: table update
    b.sw(freecode, cslot, 0);            // store 3: code table update
    // The next entry value trails a multiply: the serial chain that
    // makes table updates lag behind younger input-driven probes.
    b.addi(tmp, reg_zero, 31);           // 1
    b.mul(ent, c, tmp);                  // 1 (4-cycle)
    b.add(ent, ent, code);               // 1
    b.andi(ent, ent, 4095);              // 1
    b.j(cont);
    b.bind(hit);
    b.addi(tmp, reg_zero, 29);
    b.mul(ent, code, tmp);               // extend the current entry
    b.add(ent, ent, c);
    b.andi(ent, ent, 4095);
    b.bind(cont);
    // Output checksum: a hot RMW cell whose store data trails the
    // multiply chain while the reload's address is constant — the race
    // behind compress's chart-topping 7.8% NAV rate in Table 4.
    auto no_ck = b.newLabel();
    b.andi(tmp, inpos, 1);               // 1
    b.bne(tmp, reg_zero, no_ck);         // branch, 1/2
    b.lw(tmp, p_ck, 0);
    b.add(tmp, tmp, ent);
    b.sw(tmp, p_ck, 0);
    b.bind(no_ck);
    b.addi(iters, iters, -1);            // 1
    b.bne(iters, reg_zero, loop);        // 1
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 130.li — lisp-style cons cells: list traversal (serial pointer
// chasing), destructive rewrites (rplaca), and a GC-mark flag pass.
// Target: 29.6% / 17.6%.
// ---------------------------------------------------------------------

Program
buildLi(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned cells = 2048;
    // cell: {car, cdr, flags, data} — 16 bytes.
    Addr heap = b.dataAlloc(16 * cells);
    Random rng(0x130);
    std::vector<unsigned> order(cells);
    for (unsigned i = 0; i < cells; ++i)
        order[i] = i;
    for (unsigned i = cells - 1; i > 0; --i) {
        unsigned j = static_cast<unsigned>(rng.below(i + 1));
        std::swap(order[i], order[j]);
    }
    for (unsigned i = 0; i < cells; ++i) {
        Addr cell = heap + 16 * order[i];
        b.dataW32(cell, static_cast<uint32_t>(rng.below(100))); // car
        b.dataW32(cell + 4, static_cast<uint32_t>(
            heap + 16 * order[(i + 1) % cells]));               // cdr
        b.dataW32(cell + 12, static_cast<uint32_t>(rng.next()));
    }

    const RegId cur = ir(1), car = ir(2), acc = ir(3), tmp = ir(4),
                iters = ir(5), p_heap = ir(7), mark = ir(8),
                data = ir(9);

    b.la(cur, heap);
    b.la(p_heap, heap);
    b.mv(acc, reg_zero);
    b.li32(iters, static_cast<uint32_t>(scale / 16));

    auto loop = b.hereLabel();
    auto no_mark = b.newLabel();

    b.lw(car, cur, 0);                   // load 1: car
    b.lw(data, cur, 12);                 // load 2: datum
    b.add(acc, acc, car);                // 1
    b.xor_(acc, acc, data);              // 1
    b.addi(car, car, 1);                 // 1
    b.sw(car, cur, 0);                   // store 1: rplaca
    b.lw(mark, cur, 8);                  // load 3: GC flag word
    b.xor_(mark, mark, acc);             // 1
    b.sw(mark, cur, 8);                  // store 2: toggle mark
    b.bne(mark, reg_zero, no_mark);      // branch (data-dependent)
    b.add(acc, acc, car);
    b.bind(no_mark);
    auto no_splice = b.newLabel();
    b.andi(tmp, acc, 7);                 // 1
    b.bne(tmp, reg_zero, no_splice);     // branch, 1/8 not taken
    // rplacd: splice the list, then the chase immediately below reads
    // the freshly written cdr — li's short store->load dependence.
    b.andi(tmp, acc, (cells - 1) * 16);
    b.add(tmp, p_heap, tmp);
    b.sw(tmp, cur, 4);
    b.bind(no_splice);
    b.lw(cur, cur, 4);                   // load 4: cdr chase (serial)
    b.addi(iters, iters, -1);            // 1
    b.bne(iters, reg_zero, loop);        // 1
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 132.ijpeg — 8-point integer DCT-like butterflies: a burst of loads, a
// large ALU block, a few stores. Target: 17.7% / 8.7%.
// ---------------------------------------------------------------------

Program
buildIjpeg(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned pixels = 8192;
    Addr image = b.dataAlloc(4 * pixels);
    Addr out = b.dataAlloc(4 * pixels);
    Random rng(0x132);
    for (unsigned i = 0; i < pixels; ++i)
        b.dataW32(image + 4 * i, static_cast<uint32_t>(rng.below(256)));

    const RegId p_in = ir(1), p_out = ir(2), x0 = ir(3), x1 = ir(4),
                x2 = ir(5), x3 = ir(6), x4 = ir(7), x5 = ir(8),
                x6 = ir(9), x7 = ir(10), s0 = ir(11), s1 = ir(12),
                s2 = ir(13), s3 = ir(14), d0 = ir(15), d1 = ir(16),
                c1 = ir(17), c2 = ir(18), iters = ir(19), tmp = ir(20);

    b.la(p_in, image);
    b.la(p_out, out);
    b.addi(c1, reg_zero, 181);  // sqrt(2)/2 * 256
    b.addi(c2, reg_zero, 98);
    b.li32(iters, static_cast<uint32_t>(scale / 46));

    auto loop = b.hereLabel();
    // Load an 8-pixel row.
    b.lw(x0, p_in, 0);                   // loads 1..8
    b.lw(x1, p_in, 4);
    b.lw(x2, p_in, 8);
    b.lw(x3, p_in, 12);
    b.lw(x4, p_in, 16);
    b.lw(x5, p_in, 20);
    b.lw(x6, p_in, 24);
    b.lw(x7, p_in, 28);
    // Butterfly stage 1 (8 ops).
    b.add(s0, x0, x7);
    b.sub(d0, x0, x7);
    b.add(s1, x1, x6);
    b.sub(d1, x1, x6);
    b.add(s2, x2, x5);
    b.sub(x2, x2, x5);
    b.add(s3, x3, x4);
    b.sub(x3, x3, x4);
    // Stage 2 with scaled multiplies (~14 ops).
    b.add(x0, s0, s3);
    b.sub(x4, s0, s3);
    b.add(x1, s1, s2);
    b.sub(x5, s1, s2);
    b.mul(tmp, x5, c1);
    b.srai(x5, tmp, 8);
    b.mul(tmp, d0, c2);
    b.srai(d0, tmp, 8);
    b.mul(tmp, d1, c1);
    b.srai(d1, tmp, 8);
    b.add(x6, d0, d1);
    b.sub(x7, d0, d1);
    b.add(tmp, x0, x1);
    b.sub(x1, x0, x1);
    // Store the 4 retained coefficients.
    b.sw(tmp, p_out, 0);                 // stores 1..4
    b.sw(x1, p_out, 4);
    b.sw(x6, p_out, 8);
    b.sw(x7, p_out, 12);
    // Advance, wrapping the pointers back every 256 rows.
    b.addi(p_in, p_in, 32);
    b.addi(p_out, p_out, 16);
    b.addi(iters, iters, -1);
    b.andi(tmp, iters, 255);
    b.bne(tmp, reg_zero, loop);
    b.la(p_in, image);
    b.la(p_out, out);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 134.perl — string hashing into an associative array, plus short
// string copies. Target: 25.6% / 16.6%.
// ---------------------------------------------------------------------

Program
buildPerl(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned strings = 512;
    constexpr unsigned key_len = 8;
    constexpr unsigned buckets = 1024;
    Addr keys = b.dataAlloc(strings * key_len);
    Addr table = b.dataAlloc(4 * buckets);
    Addr meta = b.dataAlloc(4 * buckets);
    Addr copies = b.dataAlloc(strings * key_len + 64);
    Random rng(0x134);
    for (unsigned i = 0; i < strings * key_len; ++i)
        b.dataW8(keys + i, static_cast<uint8_t>(97 + rng.below(26)));

    const RegId p_keys = ir(1), p_tab = ir(2), p_copy = ir(3),
                key = ir(4), hash = ir(5), ch = ir(6), slot = ir(7),
                val = ir(8), tmp = ir(9), iters = ir(10), kidx = ir(11),
                lastslot = ir(12), p_meta = ir(13), ch2 = ir(14);

    b.la(p_keys, keys);
    b.la(p_tab, table);
    b.la(p_meta, meta);
    b.la(p_copy, copies);
    b.mv(lastslot, p_tab);
    b.mv(kidx, reg_zero);
    b.li32(iters, static_cast<uint32_t>(scale / 36));

    auto loop = b.hereLabel();
    auto skip_meta = b.newLabel();

    // Next key (sequential over the key pool).
    b.addi(kidx, kidx, key_len);            // 1
    b.andi(kidx, kidx, strings * key_len - 1); // 1
    b.add(key, p_keys, kidx);               // 1
    // Hash the first six key bytes.
    b.mv(hash, reg_zero);                   // 1
    for (unsigned i = 0; i < 6; ++i) {
        b.lbu(ch, key, static_cast<int32_t>(i)); // loads 1..6
        b.slli(hash, hash, 5);
        b.add(hash, hash, ch);
    }
    // Copy the first two bytes out (string materialization).
    b.add(tmp, p_copy, kidx);               // 1
    b.lbu(ch, key, 6);                      // load 7
    b.lbu(ch2, key, 7);                     // load 8
    b.sb(ch, tmp, 0);                       // store 1
    b.sb(ch2, tmp, 1);                      // store 2
    b.sb(reg_zero, tmp, 2);                 // store 3: terminator
    b.sw(hash, tmp, 4);                     // store 4: cached hash
    // Probe and update the bucket (RMW) and its metadata.
    b.andi(hash, hash, buckets - 1);        // 1
    b.slli(slot, hash, 2);                  // 1
    b.add(tmp, p_meta, slot);               // 1
    b.add(slot, p_tab, slot);               // 1
    b.lw(val, slot, 0);                     // load 9
    b.addi(val, val, 1);                    // 1
    b.sw(val, slot, 0);                     // store 4
    b.sw(kidx, tmp, 0);                     // store 5: last-key meta
    b.andi(tmp, val, 3);                    // 1
    b.bne(tmp, reg_zero, skip_meta);        // branch
    // Re-check the bucket updated LAST iteration: a recurring short
    // store->load pair (paper: perl 2.9%).
    b.lw(tmp, lastslot, 0);
    b.add(hash, hash, tmp);
    b.bind(skip_meta);
    b.mv(lastslot, slot);                   // 1
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// 147.vortex — database record manipulation: copy 4-word records
// between pools and update an index, giving the paper's unusually high
// store fraction (stores > loads is unique to vortex in Table 1) and
// its AS/NAV resource-contention behaviour. Target: 26.3% / 27.3%.
// ---------------------------------------------------------------------

Program
buildVortex(uint64_t scale)
{
    ProgramBuilder b;
    constexpr unsigned records = 1024;
    // 8-word record slots; six words are live.
    Addr src_pool = b.dataAlloc(32 * records);
    Addr dst_pool = b.dataAlloc(32 * records);
    Addr index = b.dataAlloc(4 * records);
    Random rng(0x147);
    for (unsigned i = 0; i < 8 * records; ++i) {
        b.dataW32(src_pool + 4 * i,
                  static_cast<uint32_t>(rng.next()));
    }

    const RegId p_src = ir(1), p_dst = ir(2), p_idx = ir(3), f0 = ir(4),
                f1 = ir(5), f2 = ir(6), f3 = ir(7), tmp = ir(8),
                iters = ir(9), ridx = ir(10), lastdst = ir(11),
                f4 = ir(12), f5 = ir(13), f6 = ir(14), f7 = ir(15),
                olddst = ir(16), state = ir(20);

    b.la(p_src, src_pool);
    b.la(p_dst, dst_pool);
    b.la(p_idx, index);
    b.mv(lastdst, p_dst);
    b.mv(olddst, p_dst);
    b.li32(state, 0x147147);
    b.li32(iters, static_cast<uint32_t>(scale / 27));

    auto loop = b.hereLabel();
    auto fresh_src = b.newLabel();
    auto do_copy = b.newLabel();

    emitXorshift(b, state, tmp);            // 4
    b.andi(ridx, state, records - 1);       // 1
    // Every 8th record is re-read from the record written two
    // iterations ago — vortex's in-flight record traffic (short true
    // dependences plus the speculative-load port pressure behind its
    // AS/NAV slowdown).
    b.andi(tmp, state, 28);                 // 1
    b.bne(tmp, reg_zero, fresh_src);        // branch
    b.mv(tmp, olddst);
    b.j(do_copy);
    b.bind(fresh_src);
    b.slli(tmp, ridx, 5);                   // 1
    b.add(tmp, p_src, tmp);                 // 1
    b.bind(do_copy);
    b.lw(f0, tmp, 0);                       // loads 1..6
    b.lw(f1, tmp, 4);
    b.lw(f2, tmp, 8);
    b.lw(f3, tmp, 12);
    b.lw(f4, tmp, 16);
    b.lw(f5, tmp, 20);
    b.lw(f6, tmp, 24);
    b.lw(f7, tmp, 28);
    b.slli(tmp, ridx, 5);                   // 1
    b.add(tmp, p_dst, tmp);                 // 1
    b.addi(f0, f0, 1);                      // 1 (version bump)
    b.sw(f0, tmp, 0);                       // stores 1..8
    b.sw(f1, tmp, 4);
    b.sw(f2, tmp, 8);
    b.sw(f3, tmp, 12);
    b.sw(f4, tmp, 16);
    b.sw(f5, tmp, 20);
    b.sw(f6, tmp, 24);
    b.sw(f7, tmp, 28);
    // Index entry points at the record just written.
    b.slli(f1, ridx, 2);                    // 1
    b.add(f1, p_idx, f1);                   // 1
    b.sw(tmp, f1, 0);                       // store 5
    b.mv(olddst, lastdst);                  // 1
    b.mv(lastdst, tmp);                     // 1
    b.addi(iters, iters, -1);
    b.bne(iters, reg_zero, loop);
    b.halt();
    return b.build();
}

} // namespace workloads
} // namespace cwsim
