/**
 * @file
 * Internal declarations of the 18 kernel builders. Each returns a
 * self-contained Program whose dynamic instruction stream approximates
 * its SPEC'95 namesake's load/store mix (paper Table 1) and dependence
 * character. @p scale is the approximate dynamic instruction target.
 */

#ifndef CWSIM_WORKLOADS_KERNELS_HH
#define CWSIM_WORKLOADS_KERNELS_HH

#include <cstdint>

#include "isa/program.hh"

namespace cwsim
{
namespace workloads
{

// SPECint'95-like.
Program buildGo(uint64_t scale);       // 099: branchy board evaluation
Program buildM88ksim(uint64_t scale);  // 124: CPU interpreter loop
Program buildGcc(uint64_t scale);      // 126: tree/list rewriting
Program buildCompress(uint64_t scale); // 129: LZW hash-table RMW
Program buildLi(uint64_t scale);       // 130: cons cells + GC mark
Program buildIjpeg(uint64_t scale);    // 132: integer DCT blocks
Program buildPerl(uint64_t scale);     // 134: string hashing
Program buildVortex(uint64_t scale);   // 147: record copy/insert

// SPECfp'95-like.
Program buildTomcatv(uint64_t scale);  // 101: 2D mesh relaxation
Program buildSwim(uint64_t scale);     // 102: shallow-water stencil
Program buildSu2cor(uint64_t scale);   // 103: lattice gather
Program buildHydro2d(uint64_t scale);  // 104: hydro stencil w/ divides
Program buildMgrid(uint64_t scale);    // 107: 3D multigrid relax
Program buildApplu(uint64_t scale);    // 110: SSOR recurrence sweep
Program buildTurb3d(uint64_t scale);   // 125: in-place FFT butterflies
Program buildApsi(uint64_t scale);     // 141: column sweeps
Program buildFpppp(uint64_t scale);    // 145: huge straight-line blocks
Program buildWave5(uint64_t scale);    // 146: particle push

} // namespace workloads
} // namespace cwsim

#endif // CWSIM_WORKLOADS_KERNELS_HH
