#include "workloads/workload.hh"

#include <functional>

#include "base/logging.hh"
#include "workloads/kernels.hh"

namespace cwsim
{
namespace workloads
{

namespace
{

struct KernelMeta
{
    const char *name;
    const char *shortName;
    bool isFp;
    Program (*build)(uint64_t);
    double loadPct;
    double storePct;
    double icMillions;
    const char *samplingRatio;
};

// Table 1 of the paper, in order.
const KernelMeta kernel_table[] = {
    {"099.go", "099", false, buildGo, 20.9, 7.3, 133.8, "N/A"},
    {"124.m88ksim", "124", false, buildM88ksim, 18.8, 9.6, 196.3, "1:1"},
    {"126.gcc", "126", false, buildGcc, 24.3, 17.5, 316.9, "1:2"},
    {"129.compress", "129", false, buildCompress, 21.7, 13.5, 153.8,
     "1:2"},
    {"130.li", "130", false, buildLi, 29.6, 17.6, 206.5, "1:1"},
    {"132.ijpeg", "132", false, buildIjpeg, 17.7, 8.7, 129.6, "N/A"},
    {"134.perl", "134", false, buildPerl, 25.6, 16.6, 176.8, "1:1"},
    {"147.vortex", "147", false, buildVortex, 26.3, 27.3, 376.9, "1:2"},
    {"101.tomcatv", "101", true, buildTomcatv, 31.9, 8.8, 329.1, "1:2"},
    {"102.swim", "102", true, buildSwim, 27.0, 6.6, 188.8, "1:2"},
    {"103.su2cor", "103", true, buildSu2cor, 33.8, 10.1, 279.9, "1:3"},
    {"104.hydro2d", "104", true, buildHydro2d, 29.7, 8.2, 1128.9,
     "1:10"},
    {"107.mgrid", "107", true, buildMgrid, 46.6, 3.0, 95.0, "N/A"},
    {"110.applu", "110", true, buildApplu, 31.4, 7.9, 168.9, "1:1"},
    {"125.turb3d", "125", true, buildTurb3d, 21.3, 14.6, 1666.6,
     "1:10"},
    {"141.apsi", "141", true, buildApsi, 31.4, 13.4, 125.9, "N/A"},
    {"145.fpppp", "145", true, buildFpppp, 48.8, 17.5, 214.2, "1:2"},
    {"146.wave5", "146", true, buildWave5, 30.2, 13.0, 290.8, "1:2"},
};

} // anonymous namespace

const std::vector<std::string> &
allNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &k : kernel_table)
            v.push_back(k.name);
        return v;
    }();
    return names;
}

const std::vector<std::string> &
intNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &k : kernel_table) {
            if (!k.isFp)
                v.push_back(k.name);
        }
        return v;
    }();
    return names;
}

const std::vector<std::string> &
fpNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &k : kernel_table) {
            if (k.isFp)
                v.push_back(k.name);
        }
        return v;
    }();
    return names;
}

Workload
build(const std::string &name, uint64_t scale)
{
    for (const auto &k : kernel_table) {
        if (name == k.name || name == k.shortName) {
            Workload w;
            w.name = k.name;
            w.shortName = k.shortName;
            w.isFp = k.isFp;
            w.program = k.build(scale);
            w.paperLoadPct = k.loadPct;
            w.paperStorePct = k.storePct;
            w.paperIcMillions = k.icMillions;
            w.paperSamplingRatio = k.samplingRatio;
            return w;
        }
    }
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<Workload>
buildAll(uint64_t scale)
{
    std::vector<Workload> all;
    for (const auto &k : kernel_table)
        all.push_back(build(k.name, scale));
    return all;
}

} // namespace workloads
} // namespace cwsim
