/**
 * @file
 * The cwsim workload suite: 18 synthetic kernels standing in for the
 * SPEC'95 programs of the paper's Table 1.
 *
 * SPEC'95 binaries are unavailable, so each kernel is written against
 * the cwsim ISA to approximate its namesake's *memory dependence
 * behaviour* — the dynamic load/store mix of Table 1 and the program's
 * qualitative dependence idioms (hash-table read-modify-write for
 * 129.compress, record copying for 147.vortex, array recurrences for
 * the FP codes, and so on). The goal is reproducing the paper's
 * tradeoffs, not its absolute IPCs; see DESIGN.md for the substitution
 * rationale and bench/table1_characteristics for measured-vs-paper
 * numbers.
 */

#ifndef CWSIM_WORKLOADS_WORKLOAD_HH
#define CWSIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace cwsim
{

struct Workload
{
    std::string name;      ///< e.g. "129.compress"
    std::string shortName; ///< e.g. "129" (how the paper labels plots)
    bool isFp = false;     ///< SPECfp'95-like vs SPECint'95-like.
    Program program;

    // Paper Table 1 reference values (for reporting, not simulation).
    double paperLoadPct = 0;
    double paperStorePct = 0;
    double paperIcMillions = 0;
    std::string paperSamplingRatio;
};

namespace workloads
{

/**
 * Scale knob: approximate dynamic (committed) instruction count the
 * kernel should execute. Kernels derive their iteration counts from it;
 * actual counts vary by a few percent.
 */
constexpr uint64_t default_scale = 100'000;

/** Names of all 18 kernels, SPECint first (paper Table 1 order). */
const std::vector<std::string> &allNames();
const std::vector<std::string> &intNames();
const std::vector<std::string> &fpNames();

/** Build one kernel by full or short name. */
Workload build(const std::string &name,
               uint64_t scale = default_scale);

/** Build the whole suite. */
std::vector<Workload> buildAll(uint64_t scale = default_scale);

} // namespace workloads
} // namespace cwsim

#endif // CWSIM_WORKLOADS_WORKLOAD_HH
