/**
 * @file
 * Tests for the textual assembler: directives, operand forms, label
 * resolution, error handling, and end-to-end execution of assembled
 * programs — including equivalence with the same kernel written via
 * ProgramBuilder.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "isa/asm_parser.hh"
#include "isa/builder.hh"
#include "isa/exec_fn.hh"
#include "isa/executor.hh"
#include "mem/functional_memory.hh"

namespace cwsim
{
namespace
{

ArchState
runToHalt(const Program &prog, FunctionalMemory &mem,
          uint64_t budget = 1'000'000)
{
    prog.loadInto(mem);
    Executor ex(mem, prog.entry());
    ex.run(budget);
    EXPECT_TRUE(ex.halted());
    return ex.state();
}

TEST(AsmTest, MinimalProgram)
{
    FunctionalMemory mem;
    ArchState state = runToHalt(assembleText(R"(
        addi r1, r0, 5
        addi r2, r1, 7
        halt
    )"),
                                mem);
    EXPECT_EQ(state.readReg(ir(1)), 5u);
    EXPECT_EQ(state.readReg(ir(2)), 12u);
}

TEST(AsmTest, CommentsAndBlankLines)
{
    FunctionalMemory mem;
    ArchState state = runToHalt(assembleText(R"(
        # leading comment

        addi r1, r0, 3   # trailing comment
        halt
    )"),
                                mem);
    EXPECT_EQ(state.readReg(ir(1)), 3u);
}

TEST(AsmTest, LoopWithBackwardBranch)
{
    FunctionalMemory mem;
    ArchState state = runToHalt(assembleText(R"(
        addi r1, r0, 10
        addi r2, r0, 0
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )"),
                                mem);
    EXPECT_EQ(state.readReg(ir(2)), 55u);
}

TEST(AsmTest, ForwardBranchAndJump)
{
    FunctionalMemory mem;
    ArchState state = runToHalt(assembleText(R"(
        addi r1, r0, 1
        beq  r1, r0, never
        j    skip
    never:
        addi r2, r0, 99
    skip:
        addi r3, r0, 7
        halt
    )"),
                                mem);
    EXPECT_EQ(state.readReg(ir(2)), 0u);
    EXPECT_EQ(state.readReg(ir(3)), 7u);
}

TEST(AsmTest, DataDirectivesAndMemoryOps)
{
    FunctionalMemory mem;
    ArchState state = runToHalt(assembleText(R"(
        .data
    nums:   .word 10 20 30
    bytes:  .byte 1 2 3 4
            .align 8
    pi:     .double 3.5
        .text
        la   r1, nums
        lw   r2, 0(r1)
        lw   r3, 4(r1)
        add  r4, r2, r3
        la   r5, bytes
        lbu  r6, 3(r5)
        la   r7, pi
        ld.f f0, 0(r7)
        fadd.d f1, f0, f0
        sd.f f1, 0(r7)
        halt
    )"),
                                mem);
    EXPECT_EQ(state.readReg(ir(4)), 30u);
    EXPECT_EQ(state.readReg(ir(6)), 4u);
    EXPECT_DOUBLE_EQ(exec::asDouble(state.readReg(fr(1))), 7.0);
}

TEST(AsmTest, SpaceReservesZeroedBytes)
{
    FunctionalMemory mem;
    ArchState state = runToHalt(assembleText(R"(
        .data
    buf:    .space 16
    mark:   .word 0xff
        .text
        la  r1, buf
        lw  r2, 0(r1)     # zero
        lw  r3, 16(r1)    # the marker word
        halt
    )"),
                                mem);
    EXPECT_EQ(state.readReg(ir(2)), 0u);
    EXPECT_EQ(state.readReg(ir(3)), 0xffu);
}

TEST(AsmTest, CallAndReturn)
{
    FunctionalMemory mem;
    ArchState state = runToHalt(assembleText(R"(
        addi r4, r0, 6
        jal  double_it
        addi r6, r5, 1
        halt
    double_it:
        add  r5, r4, r4
        jr   r31
    )"),
                                mem);
    EXPECT_EQ(state.readReg(ir(5)), 12u);
    EXPECT_EQ(state.readReg(ir(6)), 13u);
}

TEST(AsmTest, PseudoOps)
{
    FunctionalMemory mem;
    ArchState state = runToHalt(assembleText(R"(
        li  r1, 0xdeadbeef
        mv  r2, r1
        nop
        li  r3, -5
        halt
    )"),
                                mem);
    EXPECT_EQ(static_cast<uint32_t>(state.readReg(ir(1))), 0xdeadbeefu);
    EXPECT_EQ(state.readReg(ir(2)), state.readReg(ir(1)));
    EXPECT_EQ(static_cast<int32_t>(state.readReg(ir(3))), -5);
}

TEST(AsmTest, TwoOperandFpOps)
{
    FunctionalMemory mem;
    ArchState state = runToHalt(assembleText(R"(
        .data
    x:  .double 2.5
        .text
        la    r1, x
        ld.f  f0, 0(r1)
        fneg  f1, f0
        fmov  f2, f1
        cvt.w.d r2, f0
        cvt.d.w f3, r2
        halt
    )"),
                                mem);
    EXPECT_DOUBLE_EQ(exec::asDouble(state.readReg(fr(2))), -2.5);
    EXPECT_EQ(state.readReg(ir(2)), 2u);
    EXPECT_DOUBLE_EQ(exec::asDouble(state.readReg(fr(3))), 2.0);
}

TEST(AsmTest, HexAndNegativeImmediates)
{
    FunctionalMemory mem;
    ArchState state = runToHalt(assembleText(R"(
        addi r1, r0, 0x10
        addi r2, r0, -16
        add  r3, r1, r2
        ori  r4, r0, 0xbeef
        halt
    )"),
                                mem);
    EXPECT_EQ(state.readReg(ir(3)), 0u);
    EXPECT_EQ(state.readReg(ir(4)), 0xbeefu);
}

TEST(AsmTest, MatchesBuilderProgram)
{
    // The same kernel through both front ends must produce identical
    // architectural results.
    ProgramBuilder b;
    Addr arr = b.dataAlloc(4 * 8);
    for (int i = 0; i < 8; ++i)
        b.dataW32(arr + 4 * i, static_cast<uint32_t>(i * i));
    b.la(ir(1), arr);
    b.addi(ir(2), reg_zero, 8);
    b.addi(ir(3), reg_zero, 0);
    auto loop = b.hereLabel();
    b.lw(ir(4), ir(1), 0);
    b.add(ir(3), ir(3), ir(4));
    b.addi(ir(1), ir(1), 4);
    b.addi(ir(2), ir(2), -1);
    b.bne(ir(2), reg_zero, loop);
    b.halt();

    FunctionalMemory mem_builder;
    ArchState a = runToHalt(b.build(), mem_builder);

    FunctionalMemory mem_asm;
    ArchState c = runToHalt(assembleText(R"(
        .data
    arr: .word 0 1 4 9 16 25 36 49
        .text
        la   r1, arr
        addi r2, r0, 8
        addi r3, r0, 0
    loop:
        lw   r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 4
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
    )"),
                            mem_asm);
    EXPECT_EQ(a.readReg(ir(3)), c.readReg(ir(3)));
    EXPECT_EQ(a.readReg(ir(3)), 140u);
}

TEST(AsmDeathTest, UnknownMnemonic)
{
    EXPECT_EXIT(assembleText("frobnicate r1, r2\nhalt\n"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(AsmDeathTest, UnknownLabel)
{
    EXPECT_EXIT(assembleText("j nowhere\nhalt\n"),
                ::testing::ExitedWithCode(1), "unknown label");
}

TEST(AsmDeathTest, DuplicateLabel)
{
    EXPECT_EXIT(assembleText("a:\nnop\na:\nhalt\n"),
                ::testing::ExitedWithCode(1), "defined twice");
}

TEST(AsmDeathTest, BadRegister)
{
    EXPECT_EXIT(assembleText("addi r99, r0, 1\nhalt\n"),
                ::testing::ExitedWithCode(1), "bad register");
}

TEST(AsmDeathTest, AbsurdlyLargeRegisterNumber)
{
    // A digit string past unsigned-long range used to escape as an
    // uncaught std::out_of_range from the register parser; it must
    // take the ordinary bad-register diagnostic path.
    EXPECT_EXIT(
        assembleText("addi r99999999999999999999, r0, 1\nhalt\n"),
        ::testing::ExitedWithCode(1), "bad register");
}

TEST(AsmDeathTest, WrongOperandCount)
{
    EXPECT_EXIT(assembleText("add r1, r2\nhalt\n"),
                ::testing::ExitedWithCode(1), "expects 3 operands");
}

TEST(AsmDeathTest, InstructionInDataSegment)
{
    EXPECT_EXIT(assembleText(".data\naddi r1, r0, 1\n"),
                ::testing::ExitedWithCode(1), "instruction in .data");
}


TEST(AsmTest, AssembleFileRoundTrip)
{
    const char *path = "asm_test_tmp.s";
    {
        std::ofstream out(path);
        out << "addi r1, r0, 9\n"
               "slli r2, r1, 2\n"
               "halt\n";
    }
    Program prog = assembleFile(path);
    std::remove(path);
    FunctionalMemory mem;
    ArchState state = runToHalt(prog, mem);
    EXPECT_EQ(state.readReg(ir(2)), 36u);
}

TEST(AsmDeathTest, MissingFile)
{
    EXPECT_EXIT(assembleFile("/nonexistent/kernel.s"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // anonymous namespace
} // namespace cwsim
