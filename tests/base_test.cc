/**
 * @file
 * Unit tests for the base substrate: bitfields, integer math, the
 * deterministic PRNG, saturating counters, circular queues and string
 * helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <thread>

#include "base/addr_range.hh"
#include "base/bitfield.hh"
#include "base/byte_index.hh"
#include "base/circular_queue.hh"
#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "base/sat_counter.hh"
#include "base/sim_error.hh"
#include "base/slot_bitmap.hh"
#include "base/str.hh"

namespace cwsim
{
namespace
{

TEST(Bitfield, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(16), 0xffffu);
    EXPECT_EQ(mask(32), 0xffffffffu);
    EXPECT_EQ(mask(64), ~uint64_t(0));
}

TEST(Bitfield, ExtractBits)
{
    uint64_t v = 0xdeadbeefcafef00dull;
    EXPECT_EQ(bits(v, 3, 0), 0xdu);
    EXPECT_EQ(bits(v, 15, 0), 0xf00du);
    EXPECT_EQ(bits(v, 63, 48), 0xdeadu);
    EXPECT_EQ(bits(v, 0), 1u);
    EXPECT_EQ(bits(v, 1), 0u);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 15, 0, 0x1234), 0x1234u);
    EXPECT_EQ(insertBits(0xffffffff, 15, 8, 0), 0xffff00ffu);
    EXPECT_EQ(insertBits(0, 31, 26, 0x3f), 0xfc000000u);
}

TEST(Bitfield, SignExtend)
{
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0x7fff, 16), 32767);
    EXPECT_EQ(sext(0xffff, 16), -1);
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x2000000, 26), -33554432);
}

TEST(IntMath, PowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(4097));
}

TEST(IntMath, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(IntMath, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignUp(0x1240, 16), 0x1240u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
}

TEST(RandomTest, Deterministic)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, BelowStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(RandomTest, RangeInclusive)
{
    Random r(7);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(RandomTest, RealInUnitInterval)
{
    Random r(99);
    for (int i = 0; i < 1000; ++i) {
        double d = r.real();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(SatCounterTest, SaturatesBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.value(), 0u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounterTest, IsSetThreshold)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.isSet());
    c.increment();
    EXPECT_FALSE(c.isSet()); // 1 of max 3: lower half
    c.increment();
    EXPECT_TRUE(c.isSet());  // 2 of max 3: upper half
}

TEST(SatCounterTest, ResetRestoresInitial)
{
    SatCounter c(3, 2);
    c.increment();
    c.increment();
    c.reset();
    EXPECT_EQ(c.value(), 2u);
}

TEST(CircularQueueTest, FifoOrder)
{
    CircularQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    q.pushBack(1);
    q.pushBack(2);
    q.pushBack(3);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.front(), 1);
    EXPECT_EQ(q.back(), 3);
    q.popFront();
    EXPECT_EQ(q.front(), 2);
}

TEST(CircularQueueTest, WrapAround)
{
    CircularQueue<int> q(3);
    q.pushBack(1);
    q.pushBack(2);
    q.popFront();
    q.pushBack(3);
    q.pushBack(4);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.at(0), 2);
    EXPECT_EQ(q.at(1), 3);
    EXPECT_EQ(q.at(2), 4);
}

TEST(CircularQueueTest, TruncateDropsYoungest)
{
    CircularQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.pushBack(i);
    q.truncate(2);
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.back(), 3);
    // The queue can be refilled after truncation.
    q.pushBack(42);
    EXPECT_EQ(q.back(), 42);
}

TEST(CircularQueueTest, StableSlotIndices)
{
    CircularQueue<int> q(4);
    size_t s0 = q.pushBack(10);
    size_t s1 = q.pushBack(11);
    q.popFront();
    EXPECT_EQ(q.slot(s1), 11);
    size_t s2 = q.pushBack(12);
    EXPECT_NE(s2, s1);
    EXPECT_EQ(q.slot(s0), 10); // stale but stable storage
}

TEST(AddrRangeTest, OverlapBasics)
{
    EXPECT_TRUE(rangesOverlap(0x100, 4, 0x102, 4));
    EXPECT_TRUE(rangesOverlap(0x102, 4, 0x100, 4));
    EXPECT_TRUE(rangesOverlap(0x100, 8, 0x102, 2));
    EXPECT_FALSE(rangesOverlap(0x100, 4, 0x104, 4));
    EXPECT_FALSE(rangesOverlap(0x104, 4, 0x100, 4));
}

TEST(AddrRangeTest, OverlapAtAddressSpaceWrap)
{
    // End-exclusive bounds computed as addr + size overflow to zero at
    // the top of the address space and defeat a < comparison; the
    // subtraction form must not.
    Addr top = ~Addr(0) - 3;
    EXPECT_TRUE(rangesOverlap(top, 4, ~Addr(0) - 1, 2));
    EXPECT_TRUE(rangesOverlap(~Addr(0) - 1, 2, top, 4));
    EXPECT_TRUE(rangesOverlap(top, 4, ~Addr(0), 1));
    EXPECT_FALSE(rangesOverlap(top, 4, 0, 4));
    EXPECT_FALSE(rangesOverlap(0, 4, top, 4));

    EXPECT_TRUE(rangeCoversByte(top, 4, ~Addr(0)));
    EXPECT_TRUE(rangeCoversByte(top, 4, top));
    EXPECT_FALSE(rangeCoversByte(top, 4, 0));
    EXPECT_FALSE(rangeCoversByte(top, 4, top - 1));
}

TEST(SlotBitmapTest, SetClearIterate)
{
    SlotBitmap bm(130); // forces a partial final word
    EXPECT_TRUE(bm.none());
    EXPECT_EQ(bm.nextSet(0), SlotBitmap::npos);
    bm.set(0);
    bm.set(63);
    bm.set(64);
    bm.set(129);
    EXPECT_EQ(bm.count(), 4u);
    EXPECT_EQ(bm.nextSet(0), 0u);
    EXPECT_EQ(bm.nextSet(1), 63u);
    EXPECT_EQ(bm.nextSet(64), 64u);
    EXPECT_EQ(bm.nextSet(65), 129u);
    EXPECT_EQ(bm.nextSet(130), SlotBitmap::npos);
    bm.clear(63);
    EXPECT_EQ(bm.nextSet(1), 64u);
    bm.reset();
    EXPECT_TRUE(bm.none());
}

TEST(ByteSeqIndexTest, AddRemoveLookup)
{
    ByteSeqIndex idx;
    idx.add(0x100, 4, 10, 1); // [0x100, 0x104) by seq 10
    idx.add(0x102, 4, 20, 2); // [0x102, 0x106) by seq 20
    EXPECT_EQ(idx.size(), 8u);
    EXPECT_EQ(idx.selfCheck(), "");

    ByteSeqIndex::Ref ref;
    // Overlapping byte: youngest-older wins, bounded by `before`.
    ASSERT_TRUE(idx.newestBefore(0x102, 100, ref));
    EXPECT_EQ(ref.seq, 20u);
    ASSERT_TRUE(idx.newestBefore(0x102, 20, ref));
    EXPECT_EQ(ref.seq, 10u);
    EXPECT_FALSE(idx.newestBefore(0x102, 10, ref));
    EXPECT_FALSE(idx.newestBefore(0x106, 100, ref));

    std::vector<ByteSeqIndex::Ref> out;
    idx.collectYoungerThan(0x100, 4, 10, out);
    // seq 20 touches bytes 0x102 and 0x103 of the queried range: one
    // ref per byte.
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].seq, 20u);
    EXPECT_EQ(out[1].seq, 20u);

    idx.remove(0x100, 4, 10);
    EXPECT_EQ(idx.size(), 4u);
    EXPECT_FALSE(idx.newestBefore(0x100, 100, ref));
    ASSERT_TRUE(idx.newestBefore(0x105, 100, ref));
    EXPECT_EQ(ref.seq, 20u);
    idx.remove(0x102, 4, 20);
    EXPECT_TRUE(idx.empty());
    EXPECT_EQ(idx.selfCheck(), "");
}

TEST(StrTest, Strfmt)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 5, "ok"), "x=5 y=ok");
    EXPECT_EQ(strfmt("%05.1f", 3.14), "003.1");
    EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(StrTest, SplitAndTrim)
{
    auto fields = split("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(trim("  hi \n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_TRUE(startsWith("NAS/SYNC", "NAS"));
    EXPECT_FALSE(startsWith("AS", "NAS"));
}

TEST(StrTest, EnvUint64)
{
    unsetenv("CWSIM_TEST_KNOB");
    EXPECT_EQ(envUint64("CWSIM_TEST_KNOB", 1, 7), 7u);

    setenv("CWSIM_TEST_KNOB", "42", 1);
    EXPECT_EQ(envUint64("CWSIM_TEST_KNOB", 1, 7), 42u);

    // Below the minimum: warned and ignored.
    setenv("CWSIM_TEST_KNOB", "3", 1);
    EXPECT_EQ(envUint64("CWSIM_TEST_KNOB", 10, 7), 7u);

    // Malformed values fall back instead of silently truncating.
    for (const char *bad : {"", "abc", "12abc", "-4", "1e3",
                            "99999999999999999999999999"}) {
        setenv("CWSIM_TEST_KNOB", bad, 1);
        EXPECT_EQ(envUint64("CWSIM_TEST_KNOB", 1, 7), 7u)
            << "value: '" << bad << "'";
    }
    unsetenv("CWSIM_TEST_KNOB");
}

TEST(SimErrorTrap, NestsOnOneThread)
{
    EXPECT_FALSE(errorTrapActive());
    EXPECT_EQ(errorTrapDepth(), 0);
    {
        ScopedErrorTrap outer;
        EXPECT_EQ(errorTrapDepth(), 1);
        {
            ScopedErrorTrap inner;
            EXPECT_EQ(errorTrapDepth(), 2);
            EXPECT_THROW(panic("inner"), SimError);
        }
        // The inner trap is gone but the outer still converts.
        EXPECT_EQ(errorTrapDepth(), 1);
        EXPECT_THROW(fatal("outer"), SimError);
    }
    EXPECT_FALSE(errorTrapActive());
}

/**
 * Regression: two OVERLAPPING traps on different threads must each
 * catch only their own SimError. The promises force the overlap: both
 * traps are armed before either thread panics, so a process-global
 * trap slot (rather than a per-thread one) would mis-route or
 * double-count.
 */
TEST(SimErrorTrap, OverlappingTrapsOnTwoThreads)
{
    std::promise<void> aArmed, bArmed;
    auto aReady = aArmed.get_future();
    auto bReady = bArmed.get_future();

    auto run = [](const char *msg, std::promise<void> &mine,
                  std::future<void> &other) -> std::string {
        ScopedErrorTrap trap;
        mine.set_value();
        other.wait();
        try {
            panic("%s", msg);
        } catch (const SimError &e) {
            return e.message();
        }
        return "not caught";
    };

    auto a = std::async(std::launch::async, [&] {
        return run("boom A", aArmed, bReady);
    });
    auto b = std::async(std::launch::async, [&] {
        return run("boom B", bArmed, aReady);
    });

    EXPECT_EQ(a.get(), "boom A");
    EXPECT_EQ(b.get(), "boom B");
    // Neither worker's trap leaked into this thread.
    EXPECT_FALSE(errorTrapActive());
}

TEST(SimErrorTrap, WorkerTrapDoesNotArmOtherThreads)
{
    ScopedErrorTrap trap; // armed on the main test thread
    bool worker_armed = true;
    std::thread([&] { worker_armed = errorTrapActive(); }).join();
    EXPECT_FALSE(worker_armed);
    EXPECT_TRUE(errorTrapActive());
}

} // anonymous namespace
} // namespace cwsim
