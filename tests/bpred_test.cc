/**
 * @file
 * Tests for the combined branch predictor, BTB and return-address
 * stack, including speculative-history checkpoint/repair.
 */

#include <gtest/gtest.h>

#include "bpred/bpred.hh"
#include "isa/static_inst.hh"
#include "sim/config.hh"

namespace cwsim
{
namespace
{

StaticInst
branchInst()
{
    return StaticInst(Opcode::BNE, reg_invalid, ir(1), ir(2), -2);
}

StaticInst
callInst()
{
    return StaticInst(Opcode::JAL, reg_ra, reg_invalid, reg_invalid, 10);
}

StaticInst
returnInst()
{
    return StaticInst(Opcode::JR, reg_invalid, reg_ra, reg_invalid, 0);
}

StaticInst
indirectInst()
{
    return StaticInst(Opcode::JALR, ir(5), ir(6), reg_invalid, 0);
}

struct BPredFixture : public ::testing::Test
{
    BPredFixture() : bp(BPredConfig{}) {}

    /** Predict-and-train one resolved branch outcome. */
    bool
    predictThenTrain(Addr pc, bool actual)
    {
        StaticInst inst = branchInst();
        auto pred = bp.predict(inst, pc);
        bp.update(inst, pc, actual, branchTarget(inst, pc),
                  pred.checkpoint.globalHist);
        if (pred.taken != actual)
            bp.repairAndResolve(pred.checkpoint, actual);
        return pred.taken;
    }

    BranchPredictor bp;
};

TEST_F(BPredFixture, LearnsAlwaysTaken)
{
    Addr pc = 0x1000;
    for (int i = 0; i < 8; ++i)
        predictThenTrain(pc, true);
    EXPECT_TRUE(predictThenTrain(pc, true));
}

TEST_F(BPredFixture, LearnsAlwaysNotTaken)
{
    Addr pc = 0x2000;
    for (int i = 0; i < 8; ++i)
        predictThenTrain(pc, false);
    EXPECT_FALSE(predictThenTrain(pc, false));
}

TEST_F(BPredFixture, LearnsAlternatingViaGselect)
{
    // A strict T/N/T/N pattern is unlearnable for bimodal but trivial
    // for gselect once the selector warms up.
    Addr pc = 0x3000;
    bool outcome = false;
    for (int i = 0; i < 200; ++i) {
        predictThenTrain(pc, outcome);
        outcome = !outcome;
    }
    int correct = 0;
    for (int i = 0; i < 40; ++i) {
        if (predictThenTrain(pc, outcome) == outcome)
            ++correct;
        outcome = !outcome;
    }
    EXPECT_GE(correct, 36);
}

TEST_F(BPredFixture, DirectBranchTargetKnown)
{
    StaticInst inst = branchInst();
    auto pred = bp.predict(inst, 0x4000);
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, branchTarget(inst, 0x4000));
}

TEST_F(BPredFixture, RasPredictsReturnTargets)
{
    StaticInst call = callInst();
    StaticInst ret = returnInst();

    bp.predict(call, 0x5000); // pushes 0x5004
    bp.predict(call, 0x6000); // pushes 0x6004
    auto p1 = bp.predict(ret, 0x7000);
    EXPECT_TRUE(p1.targetKnown);
    EXPECT_EQ(p1.target, 0x6004u);
    auto p2 = bp.predict(ret, 0x7010);
    EXPECT_EQ(p2.target, 0x5004u);
}

TEST_F(BPredFixture, RasRepairAfterSquash)
{
    StaticInst call = callInst();
    StaticInst ret = returnInst();

    bp.predict(call, 0x5000); // correct path: pushes 0x5004
    // Wrong-path call clobbers the stack...
    auto wrong = bp.predict(call, 0x8000);
    // ...but repairing with its checkpoint must restore it.
    bp.repair(wrong.checkpoint);
    auto p = bp.predict(ret, 0x9000);
    EXPECT_EQ(p.target, 0x5004u);
}

TEST_F(BPredFixture, HistoryRepairRestoresPrediction)
{
    StaticInst inst = branchInst();
    auto before = bp.predict(inst, 0xa000);
    bp.repair(before.checkpoint);
    auto after = bp.predict(inst, 0xa000);
    EXPECT_EQ(before.taken, after.taken);
    EXPECT_EQ(before.checkpoint.globalHist,
              after.checkpoint.globalHist);
}

TEST_F(BPredFixture, IndirectNeedsBtbTraining)
{
    StaticInst ind = indirectInst();
    auto miss = bp.predict(ind, 0xb000);
    EXPECT_FALSE(miss.targetKnown);
    EXPECT_GE(bp.btbMisses.value(), 1u);

    bp.update(ind, 0xb000, true, 0xcafe0, 0);
    auto hit = bp.predict(ind, 0xb000);
    EXPECT_TRUE(hit.targetKnown);
    EXPECT_EQ(hit.target, 0xcafe0u);
}

TEST_F(BPredFixture, WarmUpdateTrainsWithoutCheckpoints)
{
    StaticInst inst = branchInst();
    Addr pc = 0xc000;
    for (int i = 0; i < 8; ++i)
        bp.warmUpdate(inst, pc, true, branchTarget(inst, pc));
    auto pred = bp.predict(inst, pc);
    EXPECT_TRUE(pred.taken);
}

TEST_F(BPredFixture, WarmUpdateMaintainsRas)
{
    bp.warmUpdate(callInst(), 0xd000, true, 0);
    auto p = bp.predict(returnInst(), 0xe000);
    EXPECT_EQ(p.target, 0xd004u);
}


TEST_F(BPredFixture, BtbEvictionByAliasing)
{
    // Two indirect jumps whose PCs alias the same direct-mapped BTB
    // entry evict each other.
    StaticInst ind = indirectInst();
    BPredConfig cfg;
    Addr pc_a = 0x1000;
    Addr pc_b = pc_a + 4 * cfg.btbEntries; // same index, different tag

    bp.update(ind, pc_a, true, 0xaaaa0, 0);
    EXPECT_TRUE(bp.predict(ind, pc_a).targetKnown);

    bp.update(ind, pc_b, true, 0xbbbb0, 0);
    auto pb = bp.predict(ind, pc_b);
    EXPECT_TRUE(pb.targetKnown);
    EXPECT_EQ(pb.target, 0xbbbb0u);
    // pc_a's entry was evicted (tag mismatch).
    EXPECT_FALSE(bp.predict(ind, pc_a).targetKnown);
}

TEST_F(BPredFixture, RasWrapsAroundDepth)
{
    // Pushing more frames than the RAS holds silently wraps (standard
    // hardware behaviour): the oldest return addresses are lost.
    BPredConfig cfg;
    StaticInst call = callInst();
    StaticInst ret = returnInst();
    for (unsigned i = 0; i < cfg.rasEntries + 4; ++i)
        bp.predict(call, 0x1000 + 8 * i);
    // The most recent pushes are intact.
    auto p = bp.predict(ret, 0x9000);
    EXPECT_EQ(p.target, 0x1000u + 8 * (cfg.rasEntries + 3) + 4);
}

// Parameterized sweep: the predictor must reach high accuracy on
// loop-closing branches across a range of loop trip counts.
class LoopBranchAccuracy : public ::testing::TestWithParam<int>
{
};

TEST_P(LoopBranchAccuracy, BackwardBranchMostlyCorrect)
{
    BranchPredictor bp{BPredConfig{}};
    StaticInst inst = branchInst();
    const int trip = GetParam();
    const Addr pc = 0xf000;

    int predictions = 0, correct = 0;
    for (int iter = 0; iter < 200; ++iter) {
        for (int i = 0; i < trip; ++i) {
            bool actual = i != trip - 1; // taken until loop exit
            auto pred = bp.predict(inst, pc);
            bp.update(inst, pc, actual, branchTarget(inst, pc),
                      pred.checkpoint.globalHist);
            if (pred.taken != actual)
                bp.repairAndResolve(pred.checkpoint, actual);
            if (iter >= 50) {
                ++predictions;
                correct += pred.taken == actual;
            }
        }
    }
    // Even bimodal alone gets (trip-1)/trip; gselect should do better
    // for short loops that fit in 5 history bits.
    double accuracy = static_cast<double>(correct) / predictions;
    double floor = trip <= 5 ? 0.95 : 1.0 - 2.0 / trip;
    EXPECT_GE(accuracy, floor) << "trip count " << trip;
}

INSTANTIATE_TEST_SUITE_P(TripCounts, LoopBranchAccuracy,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 64));

} // anonymous namespace
} // namespace cwsim
