/**
 * @file
 * Tests for the checked-simulation subsystem: the flight recorder,
 * forward-progress watchdog, fault injector, error-trap machinery, the
 * fail-soft harness, and — most importantly — the end-to-end property
 * that a processor stormed with injected misspeculations still commits
 * architectural state identical to the functional pre-pass under both
 * recovery models.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "base/sim_error.hh"
#include "base/str.hh"
#include "check/equivalence.hh"
#include "check/fault_injector.hh"
#include "check/flight_recorder.hh"
#include "check/watchdog.hh"
#include "cpu/processor.hh"
#include "harness/harness.hh"
#include "sweep/report.hh"
#include "mdp/mdp_table.hh"
#include "mdp/oracle.hh"
#include "sim/config.hh"
#include "sim/config_parse.hh"
#include "workloads/workload.hh"

namespace cwsim
{
namespace
{

// ---------------------------------------------------------------- //
// Flight recorder                                                  //
// ---------------------------------------------------------------- //

TEST(FlightRecorder, FillsThenWrapsOldestFirst)
{
    check::FlightRecorder frec(4);
    ASSERT_TRUE(frec.enabled());
    for (Tick c = 0; c < 10; ++c)
        frec.record(c, check::EventKind::Retire, c + 100, 4 * c);

    EXPECT_EQ(frec.total(), 10u);
    auto events = frec.events();
    ASSERT_EQ(events.size(), 4u);
    // The four newest events, oldest of those first.
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].cycle, 6 + i);
        EXPECT_EQ(events[i].seq, 106 + i);
        EXPECT_EQ(events[i].pc, 4 * (6 + i));
    }
}

TEST(FlightRecorder, PartialFillKeepsInsertionOrder)
{
    check::FlightRecorder frec(8);
    frec.record(1, check::EventKind::Violation, 5, 0x40, 0x80);
    frec.record(2, check::EventKind::Squash, 4, 0x44, 17);
    frec.record(3, check::EventKind::Retire, 6, 0x48);

    auto events = frec.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, check::EventKind::Violation);
    EXPECT_EQ(events[0].arg, 0x80u);
    EXPECT_EQ(events[1].kind, check::EventKind::Squash);
    EXPECT_EQ(events[1].arg, 17u);
    EXPECT_EQ(events[2].kind, check::EventKind::Retire);

    std::string dump = frec.dumpString();
    EXPECT_NE(dump.find("violation"), std::string::npos);
    EXPECT_NE(dump.find("squash"), std::string::npos);
    EXPECT_NE(dump.find("retire"), std::string::npos);
}

TEST(FlightRecorder, ZeroCapacityDisablesRecording)
{
    check::FlightRecorder frec(0);
    EXPECT_FALSE(frec.enabled());
    frec.record(1, check::EventKind::Retire);
    EXPECT_EQ(frec.total(), 0u);
    EXPECT_TRUE(frec.events().empty());
}

// ---------------------------------------------------------------- //
// Watchdog                                                         //
// ---------------------------------------------------------------- //

TEST(Watchdog, TripsOnlyAfterQuietPeriod)
{
    check::Watchdog wdog(100);
    EXPECT_FALSE(wdog.expired(0));
    EXPECT_FALSE(wdog.expired(100));
    EXPECT_TRUE(wdog.expired(101));

    wdog.progress(90);
    EXPECT_FALSE(wdog.expired(150));
    EXPECT_FALSE(wdog.expired(190));
    EXPECT_TRUE(wdog.expired(191));
    EXPECT_EQ(wdog.lastProgressAt(), 90u);
}

TEST(Watchdog, ZeroIntervalNeverTrips)
{
    check::Watchdog wdog(0);
    EXPECT_FALSE(wdog.expired(1'000'000'000));
}

// ---------------------------------------------------------------- //
// Error trap                                                       //
// ---------------------------------------------------------------- //

TEST(SimErrorTrap, FatalThrowsTypedErrorUnderTrap)
{
    EXPECT_FALSE(errorTrapActive());
    SimConfig cfg = makeW128Config();
    try {
        ScopedErrorTrap trap;
        ASSERT_TRUE(errorTrapActive());
        applyConfigOption(cfg, "no.such.key=1");
        FAIL() << "bad config key should have thrown under the trap";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Fatal);
        EXPECT_NE(e.summary().find("no.such.key"), std::string::npos);
    }
    EXPECT_FALSE(errorTrapActive());
}

TEST(SimErrorTrap, TrapsNest)
{
    ScopedErrorTrap outer;
    {
        ScopedErrorTrap inner;
        EXPECT_TRUE(errorTrapActive());
    }
    EXPECT_TRUE(errorTrapActive());
}

// ---------------------------------------------------------------- //
// Fault injector                                                   //
// ---------------------------------------------------------------- //

TEST(FaultInjector, DisabledWhenAllRatesZero)
{
    FaultConfig cfg;
    check::FaultInjector inj(cfg);
    EXPECT_FALSE(inj.enabled());
    EXPECT_FALSE(inj.injectSpuriousViolation());
    EXPECT_EQ(inj.injectStoreAddrDelay(), 0u);
}

TEST(FaultInjector, DeterministicForAGivenSeed)
{
    FaultConfig cfg;
    cfg.seed = 1234;
    cfg.spuriousViolationRate = 0.25;
    cfg.storeAddrDelayRate = 0.25;

    check::FaultInjector a(cfg), b(cfg);
    ASSERT_TRUE(a.enabled());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.injectSpuriousViolation(),
                  b.injectSpuriousViolation());
        EXPECT_EQ(a.injectStoreAddrDelay(), b.injectStoreAddrDelay());
    }
}

TEST(FaultInjector, HostFaultsArmAndDrawDeterministically)
{
    // Host rates alone arm the injector...
    FaultConfig cfg;
    cfg.hostCrashRate = 1.0;
    EXPECT_FALSE(cfg.any());
    EXPECT_TRUE(cfg.hostAny());
    check::FaultInjector crash(cfg);
    ASSERT_TRUE(crash.enabled());
    EXPECT_EQ(crash.drawHostFault(), check::HostFault::Crash);

    cfg = FaultConfig{};
    cfg.hostHangRate = 1.0;
    EXPECT_EQ(check::FaultInjector(cfg).drawHostFault(),
              check::HostFault::Hang);
    cfg = FaultConfig{};
    cfg.hostAllocRate = 1.0;
    EXPECT_EQ(check::FaultInjector(cfg).drawHostFault(),
              check::HostFault::Alloc);

    // ...and zero rates draw nothing AND consume no PRNG state, so
    // arming only a host fault cannot perturb the perf-fault storm.
    cfg = FaultConfig{};
    cfg.seed = 1234;
    cfg.spuriousViolationRate = 0.25;
    FaultConfig withHost = cfg;
    withHost.hostCrashRate = 0; // explicit: still zero
    check::FaultInjector plain(cfg), host(withHost);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(host.drawHostFault(), check::HostFault::None);
        EXPECT_EQ(plain.injectSpuriousViolation(),
                  host.injectSpuriousViolation());
    }
}

// ---------------------------------------------------------------- //
// MDPT fault hooks                                                 //
// ---------------------------------------------------------------- //

TEST(MdpTableFaults, DropAndCorruptPreserveSanity)
{
    MdpConfig cfg;
    MdpTable table(cfg);
    Random rng(7);

    // Nothing to fault in an empty table.
    EXPECT_FALSE(table.dropRandomEntry(rng));
    EXPECT_FALSE(table.corruptRandomEntry(rng));

    for (Addr pc = 0x100; pc < 0x200; pc += 8)
        table.pair(pc, pc + 4);
    size_t valid = table.validEntries();
    ASSERT_GT(valid, 0u);
    EXPECT_EQ(table.sanityCheck(), "");

    EXPECT_TRUE(table.dropRandomEntry(rng));
    EXPECT_EQ(table.validEntries(), valid - 1);
    EXPECT_EQ(table.sanityCheck(), "");

    // Corruption scrambles prediction state but never breaks sanity.
    for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(table.corruptRandomEntry(rng));
    EXPECT_EQ(table.sanityCheck(), "");
}

// ---------------------------------------------------------------- //
// Oracle equivalence checker                                       //
// ---------------------------------------------------------------- //

TEST(Equivalence, ReportsDivergenceAndOnlyDivergence)
{
    const Workload w = workloads::build("129.compress", 5'000);
    PrepassResult golden = runPrepass(w.program);
    ASSERT_TRUE(golden.halted);

    EXPECT_EQ(check::compareWithGolden(golden.finalState,
                                       golden.memFingerprint,
                                       golden.instCount, golden),
              "");

    ArchState bad = golden.finalState;
    bad.regs[5] ^= 0xdead;
    std::string report = check::compareWithGolden(
        bad, golden.memFingerprint ^ 1, golden.instCount + 2, golden);
    EXPECT_NE(report.find("commit"), std::string::npos);
    EXPECT_NE(report.find("fingerprint"), std::string::npos);
    EXPECT_NE(report.find("reg 5"), std::string::npos);
}

// ---------------------------------------------------------------- //
// Watchdog trips on a livelocked pipeline                          //
// ---------------------------------------------------------------- //

TEST(WatchdogTrip, LivelockedCoreRaisesStructuredDiagnostic)
{
    const Workload w = workloads::build("129.compress", 5'000);
    PrepassResult pre = runPrepass(w.program);
    ASSERT_TRUE(pre.halted);

    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    cfg.core.commitWidth = 0; // deliberately livelocked: never retires
    cfg.check.watchdogInterval = 2'000;

    try {
        ScopedErrorTrap trap;
        Processor proc(cfg, w.program, &pre.deps);
        proc.run();
        FAIL() << "livelocked run should have tripped the watchdog";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Watchdog);
        EXPECT_NE(e.message().find("livelock"), std::string::npos);
        // The diagnostic carries machine state + flight recorder.
        EXPECT_NE(e.diagnostic().find("cycle"), std::string::npos);
        EXPECT_NE(e.diagnostic().find("watchdog"), std::string::npos);
    }
}

TEST(WatchdogTrip, HealthyRunNeverTrips)
{
    const Workload w = workloads::build("129.compress", 5'000);
    PrepassResult pre = runPrepass(w.program);

    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    cfg.check.watchdogInterval = 2'000;
    cfg.check.level = 2; // heavy invariants on, for coverage

    ScopedErrorTrap trap;
    Processor proc(cfg, w.program, &pre.deps);
    EXPECT_NO_THROW(proc.run());
    EXPECT_TRUE(proc.halted());
    EXPECT_GT(proc.flightRecorder().total(), 0u);
}

// ---------------------------------------------------------------- //
// Window churn keeps the SoA mirror coherent                       //
// ---------------------------------------------------------------- //

TEST(WindowChurn, SoaMirrorSurvivesFillSquashRefill)
{
    // Hammer the window through fill/squash/refill churn under both
    // recovery models with the level-2 checker on: a small window
    // keeps constant fill pressure, and a high spurious-violation
    // rate storms the recovery machinery. Every cycle the heavy
    // invariants rebuild the window's structure-of-arrays mirror
    // from the canonical DynInst records (Window::crossCheck), so a
    // hot-field write that misses its sync() fails the run here.
    harness::Runner runner(20'000);
    for (RecoveryModel recovery :
         {RecoveryModel::Squash, RecoveryModel::Selective}) {
        SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                                   SpecPolicy::Naive);
        cfg.core.windowSize = 32;
        cfg.mdp.recovery = recovery;
        cfg.check.level = 2;
        cfg.check.faults.seed = 0xc4a11;
        cfg.check.faults.spuriousViolationRate = 0.50;

        harness::RunResult r = runner.run("126.gcc", cfg);
        ASSERT_TRUE(r.ok) << r.config << ": " << r.error;
        EXPECT_GE(r.injectedViolations, 100u) << r.config;
        EXPECT_GT(r.squashedInsts + r.replays, 0u) << r.config;
    }
    EXPECT_TRUE(runner.failures().empty());
}

// ---------------------------------------------------------------- //
// Fault-injected runs still commit the oracle's state              //
// ---------------------------------------------------------------- //

class FaultedEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FaultedEquivalence, SquashAndSelectiveSurviveInjection)
{
    harness::Runner runner(20'000);
    for (RecoveryModel recovery :
         {RecoveryModel::Squash, RecoveryModel::Selective}) {
        SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                                   SpecPolicy::Naive);
        cfg.mdp.recovery = recovery;
        cfg.check.level = 2;
        cfg.check.faults.seed = 0xfa111;
        cfg.check.faults.spuriousViolationRate = 0.30;
        cfg.check.faults.storeAddrDelayRate = 0.10;
        cfg.check.faults.storeAddrDelay = 6;

        harness::RunResult r = runner.run(GetParam(), cfg);
        // Runner::run already proved commit-state equivalence against
        // the functional pre-pass (check.level > 0) — a failure would
        // have been recorded as !ok.
        ASSERT_TRUE(r.ok) << GetParam() << " [" << r.config
                          << "]: " << r.error;
        EXPECT_GE(r.injectedViolations, 100u)
            << GetParam() << ": too few induced misspeculations to "
            << "exercise " << (recovery == RecoveryModel::Squash
                               ? "squash" : "selective")
            << " recovery";
    }
    EXPECT_TRUE(runner.failures().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, FaultedEquivalence,
    ::testing::ValuesIn(workloads::allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = "k" + info.param.substr(0, 3);
        return name;
    });

TEST(FaultedEquivalence, MdptFaultsAreHarmlessUnderSync)
{
    // SYNC leans hardest on the MDPT (synonym pairing), so storm its
    // table: dropped entries lose predictions, corrupted entries skew
    // confidence/synonyms — neither may affect architectural state.
    harness::Runner runner(20'000);
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::SpecSync);
    cfg.check.level = 2;
    cfg.check.faults.seed = 0x5eed5;
    cfg.check.faults.mdptDropRate = 0.01;
    cfg.check.faults.mdptCorruptRate = 0.01;

    for (const char *name : {"129.compress", "102.swim", "099.go"}) {
        harness::RunResult r = runner.run(name, cfg);
        ASSERT_TRUE(r.ok) << name << ": " << r.error;
    }
    EXPECT_TRUE(runner.failures().empty());
}

// ---------------------------------------------------------------- //
// Fail-soft sweeps                                                 //
// ---------------------------------------------------------------- //

TEST(FailSoftSweep, PoisonedConfigIsRecordedAndSweepContinues)
{
    harness::Runner runner(5'000);

    SimConfig good = withPolicy(makeW128Config(), LsqModel::NAS,
                                SpecPolicy::Naive);
    SimConfig poisoned = good;
    poisoned.core.commitWidth = 0; // livelock -> watchdog SimError
    poisoned.check.watchdogInterval = 2'000;

    const char *names[] = {"129.compress", "101.tomcatv"};
    std::vector<double> ipcs;
    for (const char *name : names) {
        harness::RunResult g = runner.run(name, good);
        EXPECT_TRUE(g.ok) << g.error;
        ipcs.push_back(g.ipc());

        harness::RunResult p = runner.run(name, poisoned);
        EXPECT_FALSE(p.ok);
        EXPECT_NE(p.error.find("watchdog"), std::string::npos);
        EXPECT_TRUE(std::isnan(p.ipc()));
        ipcs.push_back(p.ipc());
    }

    // Both poisoned runs recorded, both good runs unaffected. Each
    // failure carries its flight-recorder tail so the FAILED RUNS
    // report is self-diagnosing.
    ASSERT_EQ(runner.failures().size(), 2u);
    for (const auto &f : runner.failures()) {
        EXPECT_EQ(f.config, poisoned.name());
        EXPECT_FALSE(f.diagnostic.empty());
        EXPECT_NE(f.diagnostic.find("cycle"), std::string::npos);
        EXPECT_LE(split(f.diagnostic, '\n').size(), 8u);
    }
    EXPECT_EQ(sweep::reportFailures(runner), 2u);

    // Aggregation over the mixed sweep skips the NaN cells.
    double gm = harness::geomean(ipcs);
    EXPECT_TRUE(std::isfinite(gm));
    EXPECT_GT(gm, 0.0);
}

TEST(FailSoftSweep, EquivalenceFailureIsTyped)
{
    // A prepass mismatch must raise SimErrorKind::Equivalence; build
    // one artificially by comparing against a perturbed golden state.
    const Workload w = workloads::build("126.gcc", 5'000);
    PrepassResult golden = runPrepass(w.program);
    PrepassResult tampered = runPrepass(w.program);
    tampered.finalState.regs[3] += 1;
    std::string diff = check::compareWithGolden(
        tampered.finalState, tampered.memFingerprint,
        tampered.instCount, golden);
    EXPECT_NE(diff.find("reg 3"), std::string::npos);
}

// ---------------------------------------------------------------- //
// NaN-tolerant aggregation helpers                                 //
// ---------------------------------------------------------------- //

TEST(Aggregation, GeomeanSkipsUnusableValues)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(std::isnan(harness::geomean({})));
    EXPECT_TRUE(std::isnan(harness::geomean({nan, 0.0, -3.0})));
    EXPECT_DOUBLE_EQ(harness::geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(harness::geomean({nan, 2.0, 8.0, nan}), 4.0);
}

TEST(Aggregation, FormattersRenderNaNAsNA)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(harness::formatSpeedup(nan), "n/a");
    EXPECT_EQ(harness::formatPct(nan), "n/a");
    EXPECT_EQ(harness::formatSpeedup(1.123), "+12.3%");
    EXPECT_EQ(harness::formatPct(0.0123, 2), "1.23%");
}

TEST(Aggregation, MeanSpeedupToleratesMissingKeys)
{
    std::map<std::string, double> num{{"a", 2.0}, {"b", 4.0}};
    std::map<std::string, double> den{{"a", 1.0}};
    // "b" is missing from den (its run failed before recording).
    EXPECT_DOUBLE_EQ(harness::meanSpeedup(num, den, {"a", "b"}), 2.0);
}

// ---------------------------------------------------------------- //
// Config plumbing for the check/fault knobs                        //
// ---------------------------------------------------------------- //

TEST(CheckConfig, ParsesAllKnobs)
{
    SimConfig cfg = makeW128Config();
    applyConfigOption(cfg, "check.level=2");
    applyConfigOption(cfg, "check.watchdogInterval=12345");
    applyConfigOption(cfg, "check.flightRecorderSize=64");
    applyConfigOption(cfg, "check.faults.seed=99");
    applyConfigOption(cfg, "check.faults.spuriousViolationRate=0.25");
    applyConfigOption(cfg, "check.faults.storeAddrDelayRate=0.5");
    applyConfigOption(cfg, "check.faults.storeAddrDelay=16");
    applyConfigOption(cfg, "check.faults.mdptDropRate=0.125");
    applyConfigOption(cfg, "check.faults.mdptCorruptRate=0.0625");

    EXPECT_EQ(cfg.check.level, 2u);
    EXPECT_EQ(cfg.check.watchdogInterval, 12345u);
    EXPECT_EQ(cfg.check.flightRecorderSize, 64u);
    EXPECT_EQ(cfg.check.faults.seed, 99u);
    EXPECT_DOUBLE_EQ(cfg.check.faults.spuriousViolationRate, 0.25);
    EXPECT_DOUBLE_EQ(cfg.check.faults.storeAddrDelayRate, 0.5);
    EXPECT_EQ(cfg.check.faults.storeAddrDelay, 16u);
    EXPECT_DOUBLE_EQ(cfg.check.faults.mdptDropRate, 0.125);
    EXPECT_DOUBLE_EQ(cfg.check.faults.mdptCorruptRate, 0.0625);
    EXPECT_TRUE(cfg.check.faults.any());
}

} // anonymous namespace
} // namespace cwsim
