/**
 * @file
 * Tests for the commit-slot cycle-accounting subsystem (CPI stacks):
 * the CpiStack counter itself, its StatGroup export, the conservation
 * law (every commit slot attributed to exactly one cause) across the
 * whole workload suite under every speculation policy and both
 * recovery models, serial-vs-parallel bit-identity of attributions,
 * and the split-window model's own stack.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/harness.hh"
#include "obs/cpi_stack.hh"
#include "sim/stats.hh"
#include "split/split_window.hh"
#include "sweep/sweep.hh"

namespace cwsim
{
namespace
{

using harness::RunResult;
using harness::Runner;
using obs::CpiCause;
using obs::CpiStack;
using sweep::SweepEngine;
using sweep::SweepOptions;
using sweep::SweepPlan;

TEST(CpiStack, AccountsEverySlotExactlyOnce)
{
    CpiStack cpi(4);
    EXPECT_EQ(cpi.width(), 4u);
    EXPECT_EQ(cpi.cycles(), 0u);
    EXPECT_EQ(cpi.totalSlots(), 0u);

    cpi.account(4, CpiCause::Committed);   // full commit cycle
    cpi.account(1, CpiCause::CacheMiss);   // 3 residual slots
    cpi.account(0, CpiCause::MemDepSquash); // fully stalled cycle

    EXPECT_EQ(cpi.cycles(), 3u);
    EXPECT_EQ(cpi.slot(CpiCause::Committed), 5u);
    EXPECT_EQ(cpi.slot(CpiCause::CacheMiss), 3u);
    EXPECT_EQ(cpi.slot(CpiCause::MemDepSquash), 4u);
    EXPECT_EQ(cpi.slot(CpiCause::Exec), 0u);
    // Conservation by construction: slots == cycles * width.
    EXPECT_EQ(cpi.totalSlots(), 3u * 4u);

    EXPECT_DOUBLE_EQ(cpi.fraction(CpiCause::Committed), 5.0 / 12.0);
    EXPECT_DOUBLE_EQ(cpi.fraction(CpiCause::MemDepSquash), 4.0 / 12.0);
    EXPECT_DOUBLE_EQ(cpi.fraction(CpiCause::TrueDep), 0.0);
}

TEST(CpiStack, RegistersUnderParentStatGroup)
{
    stats::StatGroup root("proc");
    CpiStack cpi(8);
    cpi.registerIn(root);
    cpi.account(3, CpiCause::WindowFull);

    std::string json = root.jsonString();
    EXPECT_NE(json.find("\"proc.cpi.committed\":3"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"proc.cpi.window_full\":5"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"proc.cpi.cycles\":1"), std::string::npos)
        << json;
    // Every cause exports under its stable snake_case key.
    for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
        std::string key = std::string("\"proc.cpi.") +
                          obs::statKey(CpiCause(i)) + "\":";
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

TEST(CpiStack, CauseNamesAreStable)
{
    // statKey() is an on-disk format (JSONL "cpi_" columns and stat
    // export); renaming a key silently orphans old sweep files.
    EXPECT_STREQ(obs::statKey(CpiCause::Committed), "committed");
    EXPECT_STREQ(obs::statKey(CpiCause::MemDepSquash),
                 "mem_dep_squash");
    EXPECT_STREQ(obs::statKey(CpiCause::FalseDep), "false_dep");
    EXPECT_STREQ(obs::statKey(CpiCause::TrueDep), "true_dep");
    EXPECT_STREQ(obs::statKey(CpiCause::SyncWait), "sync_wait");
    EXPECT_STREQ(obs::statKey(CpiCause::StoreBarrier),
                 "store_barrier");
    EXPECT_STREQ(obs::statKey(CpiCause::AddrSched), "addr_sched");
    EXPECT_STREQ(obs::statKey(CpiCause::CacheMiss), "cache_miss");
    EXPECT_STREQ(obs::statKey(CpiCause::FetchBranch), "fetch_branch");
    EXPECT_STREQ(obs::statKey(CpiCause::WindowFull), "window_full");
    EXPECT_STREQ(obs::statKey(CpiCause::FrontEndIdle),
                 "front_end_idle");
    EXPECT_STREQ(obs::statKey(CpiCause::Exec), "exec");
    for (size_t i = 0; i < obs::num_cpi_causes; ++i)
        EXPECT_NE(obs::toString(CpiCause(i)), nullptr);
}

/**
 * The eight (LSQ model, policy) configurations the paper sweeps: the
 * six NAS policies plus the address scheduler with and without
 * speculation (nonzero latency so the AddrSched cause is exercised).
 */
std::vector<SimConfig>
allPolicyConfigs(RecoveryModel recovery)
{
    std::vector<SimConfig> configs;
    for (SpecPolicy policy :
         {SpecPolicy::No, SpecPolicy::Naive, SpecPolicy::Selective,
          SpecPolicy::StoreBarrier, SpecPolicy::SpecSync,
          SpecPolicy::Oracle}) {
        configs.push_back(
            withPolicy(makeW128Config(), LsqModel::NAS, policy));
    }
    configs.push_back(
        withPolicy(makeW128Config(), LsqModel::AS, SpecPolicy::No, 1));
    configs.push_back(withPolicy(makeW128Config(), LsqModel::AS,
                                 SpecPolicy::Naive, 1));
    for (SimConfig &cfg : configs)
        cfg.mdp.recovery = recovery;
    return configs;
}

TEST(CpiConservation, HoldsOnEveryWorkloadPolicyAndRecoveryModel)
{
    // Every workload x every policy x both recovery models: the level-1
    // invariant checker enforces conservation every check period
    // in-simulation; this asserts it end-to-end on the final counters,
    // plus the anchor identity slot(Committed) == total commits.
    SweepPlan plan;
    for (const auto &name : workloads::allNames()) {
        for (RecoveryModel rec :
             {RecoveryModel::Squash, RecoveryModel::Selective}) {
            for (const SimConfig &cfg : allPolicyConfigs(rec))
                plan.add(name, cfg);
        }
    }

    Runner runner(2000);
    SweepOptions opts;
    opts.useCache = false;
    SweepEngine engine(runner, opts);
    auto results = engine.run(plan);

    ASSERT_EQ(results.size(), plan.size());
    for (size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        SCOPED_TRACE(r.workload + " / " + r.config);
        ASSERT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(r.hasCpiStack());
        EXPECT_EQ(r.commitWidth,
                  plan.jobs()[i].config.core.commitWidth);
        EXPECT_EQ(r.cpiTotalSlots(),
                  r.cycles * uint64_t{r.commitWidth});
        EXPECT_EQ(r.cpiSlots[size_t(CpiCause::Committed)], r.commits);
    }
    EXPECT_TRUE(runner.failures().empty());
}

TEST(CpiConservation, AttributionsBitIdenticalSerialVsParallel)
{
    SweepPlan plan;
    for (const char *name :
         {"129.compress", "099.go", "102.swim", "104.hydro2d"}) {
        for (SpecPolicy policy :
             {SpecPolicy::Naive, SpecPolicy::Selective,
              SpecPolicy::SpecSync}) {
            plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                      policy));
        }
    }

    Runner serialRunner(3000);
    SweepOptions serialOpts;
    serialOpts.jobs = 1;
    serialOpts.useCache = false;
    auto serialResults =
        SweepEngine(serialRunner, serialOpts).run(plan);

    Runner parallelRunner(3000);
    SweepOptions parallelOpts;
    parallelOpts.jobs = 4;
    parallelOpts.useCache = false;
    auto parallelResults =
        SweepEngine(parallelRunner, parallelOpts).run(plan);

    ASSERT_EQ(serialResults.size(), parallelResults.size());
    for (size_t i = 0; i < serialResults.size(); ++i) {
        SCOPED_TRACE(serialResults[i].workload + " / " +
                     serialResults[i].config);
        EXPECT_EQ(serialResults[i].commitWidth,
                  parallelResults[i].commitWidth);
        for (size_t c = 0; c < obs::num_cpi_causes; ++c) {
            EXPECT_EQ(serialResults[i].cpiSlots[c],
                      parallelResults[i].cpiSlots[c])
                << obs::toString(CpiCause(c));
        }
    }
}

TEST(CpiSplitWindow, ConservationAcrossWindowTypesAndPolicies)
{
    Workload w = workloads::build("129.compress", 3000);
    PrepassOptions popts;
    popts.recordTrace = true;
    PrepassResult pre = runPrepass(w.program, popts);
    ASSERT_TRUE(pre.halted);

    for (bool split : {false, true}) {
        for (SpecPolicy policy :
             {SpecPolicy::No, SpecPolicy::Naive, SpecPolicy::SpecSync}) {
            SplitConfig cfg;
            if (!split)
                cfg = SplitConfig::continuous();
            cfg.policy = policy;
            SplitWindowSim sim(cfg, pre.trace);
            // run() itself panics if conservation breaks; re-assert on
            // the public accessors.
            sim.run();
            SCOPED_TRACE(std::string(split ? "split" : "continuous") +
                         " policy " + std::to_string(int(policy)));
            const CpiStack &cpi = sim.cpiStack();
            EXPECT_EQ(cpi.width(), cfg.commitWidth);
            EXPECT_EQ(cpi.totalSlots(),
                      sim.cycles() * uint64_t{cfg.commitWidth});
            EXPECT_EQ(cpi.slot(CpiCause::Committed), sim.committed());
        }
    }
}

} // anonymous namespace
} // namespace cwsim
