/**
 * @file
 * Tests for the out-of-order timing core. The central property: under
 * EVERY load/store scheduling configuration, the timing core must
 * commit exactly the architectural results the functional interpreter
 * produces — speculation may change timing, never semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/processor.hh"
#include "isa/builder.hh"
#include "isa/executor.hh"
#include "mdp/oracle.hh"
#include "mem/functional_memory.hh"
#include "sim/config.hh"

namespace cwsim
{
namespace
{

/** All eight (model, policy) combinations the paper studies. */
const std::vector<std::pair<LsqModel, SpecPolicy>> all_configs = {
    {LsqModel::NAS, SpecPolicy::No},
    {LsqModel::NAS, SpecPolicy::Naive},
    {LsqModel::NAS, SpecPolicy::Selective},
    {LsqModel::NAS, SpecPolicy::StoreBarrier},
    {LsqModel::NAS, SpecPolicy::SpecSync},
    {LsqModel::NAS, SpecPolicy::Oracle},
    {LsqModel::AS, SpecPolicy::No},
    {LsqModel::AS, SpecPolicy::Naive},
};

struct RunResult
{
    uint64_t cycles;
    uint64_t commits;
    uint64_t violations;
    ArchState finalState;
    uint64_t memFingerprint;
};

RunResult
runTimed(const Program &prog, LsqModel model, SpecPolicy policy,
         Cycles as_lat = 0, const OracleDeps *oracle = nullptr)
{
    SimConfig cfg = withPolicy(makeW128Config(), model, policy, as_lat);
    cfg.maxCycles = 2'000'000;
    Processor proc(cfg, prog, oracle);
    proc.run();
    EXPECT_TRUE(proc.halted()) << "did not reach HALT under "
                               << cfg.name();
    RunResult r;
    r.cycles = proc.procStats().cycles.value();
    r.commits = proc.procStats().commits.value();
    r.violations = proc.procStats().memOrderViolations.value();
    r.finalState = proc.archState();
    r.memFingerprint = proc.memory().fingerprint();
    return r;
}

void
expectMatchesFunctional(const Program &prog, const PrepassResult &golden,
                        const RunResult &timed, const std::string &what)
{
    (void)prog;
    EXPECT_EQ(timed.memFingerprint, golden.memFingerprint)
        << what << ": memory differs from functional execution";
    for (unsigned r = 0; r < num_arch_regs; ++r) {
        EXPECT_EQ(timed.finalState.regs[r], golden.finalState.regs[r])
            << what << ": register " << r << " differs";
    }
    // +1: the prepass counts HALT itself as an executed instruction and
    // so does commit.
    EXPECT_EQ(timed.commits, golden.instCount) << what;
}

// ---------------------------------------------------------------------
// Test programs.
// ---------------------------------------------------------------------

/** Independent ALU work, no memory: pipeline sanity. */
Program
aluProgram()
{
    ProgramBuilder b;
    b.addi(ir(1), reg_zero, 1);
    b.addi(ir(2), reg_zero, 2);
    auto loop = b.hereLabel();
    b.add(ir(3), ir(1), ir(2));
    b.mul(ir(4), ir(3), ir(2));
    b.sub(ir(5), ir(4), ir(1));
    b.addi(ir(1), ir(1), 1);
    b.slti(ir(6), ir(1), 50);
    b.bne(ir(6), reg_zero, loop);
    b.halt();
    return b.build();
}

/** A classic memory recurrence: a[i] = a[i-1] + 1. */
Program
recurrenceProgram(int n = 64)
{
    ProgramBuilder b;
    Addr arr = b.dataAlloc(4 * (n + 1));
    b.dataW32(arr, 5);
    b.la(ir(1), arr);     // p = &a[0]
    b.addi(ir(2), reg_zero, n);
    auto loop = b.hereLabel();
    b.lw(ir(3), ir(1), 0);       // t = a[i-1]
    b.addi(ir(3), ir(3), 1);
    b.sw(ir(3), ir(1), 4);       // a[i] = t + 1
    b.addi(ir(1), ir(1), 4);
    b.addi(ir(2), ir(2), -1);
    b.bne(ir(2), reg_zero, loop);
    b.lw(ir(10), ir(1), 0);      // final value
    b.halt();
    return b.build();
}

/**
 * Stores with slow (divide-fed) data followed by independent loads:
 * maximal false dependences — the NAS/NO pathology of Table 3.
 */
Program
falseDepProgram()
{
    ProgramBuilder b;
    Addr a = b.dataAlloc(4 * 256);
    Addr bb = b.dataAlloc(4 * 256);
    for (int i = 0; i < 256; ++i)
        b.dataW32(bb + 4 * i, i * 3 + 1);
    b.la(ir(1), a);
    b.la(ir(2), bb);
    b.addi(ir(3), reg_zero, 64);  // iterations
    b.addi(ir(4), reg_zero, 97);
    auto loop = b.hereLabel();
    b.div(ir(5), ir(4), ir(3));   // slow producer
    b.sw(ir(5), ir(1), 0);        // store with late data
    b.lw(ir(6), ir(2), 0);        // independent loads
    b.lw(ir(7), ir(2), 4);
    b.lw(ir(8), ir(2), 8);
    b.add(ir(9), ir(6), ir(7));
    b.add(ir(9), ir(9), ir(8));
    b.add(ir(4), ir(4), ir(9));
    b.addi(ir(1), ir(1), 4);
    b.addi(ir(2), ir(2), 4);
    b.addi(ir(3), ir(3), -1);
    b.bne(ir(3), reg_zero, loop);
    b.halt();
    return b.build();
}

/**
 * A store->load true dependence through memory where the load's address
 * is ready long before the store's data: naive speculation violates it
 * every iteration, and the same static (store, load) pair repeats — the
 * pattern SYNC is built to fix.
 */
Program
violationProgram(int n = 200)
{
    ProgramBuilder b;
    Addr cell = b.dataAlloc(8);
    Addr sink = b.dataAlloc(4 * 8);
    b.dataW32(cell, 1);
    b.la(ir(1), cell);
    b.la(ir(7), sink);
    b.addi(ir(2), reg_zero, n);
    b.addi(ir(5), reg_zero, 13);
    auto loop = b.hereLabel();
    b.mul(ir(4), ir(5), ir(2));   // slow data for the store
    b.sw(ir(4), ir(1), 0);        // store to cell
    b.lw(ir(6), ir(1), 0);        // immediately reload the cell
    b.add(ir(5), ir(6), ir(5));   // consume quickly
    b.sw(ir(5), ir(7), 0);
    b.addi(ir(2), ir(2), -1);
    b.bne(ir(2), reg_zero, loop);
    b.halt();
    return b.build();
}

/** Byte-granular partial overlap: sb/lb/lw mixing. */
Program
partialOverlapProgram()
{
    ProgramBuilder b;
    Addr buf = b.dataAlloc(16);
    b.dataW32(buf, 0x44332211);
    b.la(ir(1), buf);
    b.addi(ir(2), reg_zero, 0x7f);
    b.sb(ir(2), ir(1), 1);        // overwrite byte 1
    b.lw(ir(3), ir(1), 0);        // word load across the stored byte
    b.lbu(ir(4), ir(1), 1);
    b.addi(ir(5), reg_zero, -2);
    b.sb(ir(5), ir(1), 3);
    b.lw(ir(6), ir(1), 0);
    b.sw(ir(6), ir(1), 8);
    b.lbu(ir(7), ir(1), 11);
    b.halt();
    return b.build();
}

/**
 * Two partially overlapping stores into one word, where only the
 * YOUNGER store's data is ready when the load issues: the load forwards
 * byte 1 from the younger store and reads byte 0 stale from memory.
 * When the older store finally executes, a scalar "youngest forwarding
 * source" test concludes the load already saw a younger store and skips
 * it — only per-byte source tracking catches the stale byte 0.
 */
Program
byteWiseViolationProgram()
{
    ProgramBuilder b;
    Addr buf = b.dataAlloc(8);
    b.dataW32(buf, 0x11223344);
    b.la(ir(1), buf);
    b.addi(ir(2), reg_zero, 3);
    b.mul(ir(2), ir(2), ir(2));   // slow data chain for the older store
    b.mul(ir(2), ir(2), ir(2));
    b.mul(ir(2), ir(2), ir(2));
    b.mul(ir(2), ir(2), ir(2));
    b.sb(ir(2), ir(1), 0);        // S1: byte 0, data arrives late
    b.addi(ir(3), reg_zero, 0x5a);
    b.sb(ir(3), ir(1), 1);        // S2: byte 1, executes immediately
    b.lw(ir(4), ir(1), 0);        // forwards byte 1 from S2, byte 0
                                  // speculatively from memory
    b.halt();
    return b.build();
}

/** Function calls + stack traffic exercising the RAS and JR. */
Program
callProgram()
{
    ProgramBuilder b;
    Addr stack_top = b.stackTop();
    auto func = b.newLabel();
    auto done = b.newLabel();
    b.la(reg_sp, stack_top);
    b.addi(ir(4), reg_zero, 12);
    b.addi(ir(10), reg_zero, 0);
    auto loop = b.hereLabel();
    b.jal(func);
    b.add(ir(10), ir(10), ir(5));
    b.addi(ir(4), ir(4), -1);
    b.bne(ir(4), reg_zero, loop);
    b.j(done);
    b.bind(func);
    b.addi(reg_sp, reg_sp, -8);
    b.sw(ir(4), reg_sp, 0);       // spill
    b.sw(reg_ra, reg_sp, 4);
    b.mul(ir(5), ir(4), ir(4));
    b.lw(ir(4), reg_sp, 0);       // reload
    b.lw(reg_ra, reg_sp, 4);
    b.addi(reg_sp, reg_sp, 8);
    b.jr(reg_ra);
    b.bind(done);
    b.halt();
    return b.build();
}

// ---------------------------------------------------------------------
// Architectural equivalence, parameterized over all configurations.
// ---------------------------------------------------------------------

class EquivalenceTest
    : public ::testing::TestWithParam<std::pair<LsqModel, SpecPolicy>>
{
  protected:
    void
    check(const Program &prog)
    {
        auto [model, policy] = GetParam();
        PrepassResult golden = runPrepass(prog);
        ASSERT_TRUE(golden.halted);
        RunResult timed = runTimed(prog, model, policy, 0, &golden.deps);
        expectMatchesFunctional(prog, golden, timed,
                                configName(model, policy));
    }
};

TEST_P(EquivalenceTest, AluLoop) { check(aluProgram()); }
TEST_P(EquivalenceTest, MemoryRecurrence) { check(recurrenceProgram()); }
TEST_P(EquivalenceTest, FalseDepKernel) { check(falseDepProgram()); }
TEST_P(EquivalenceTest, ViolationKernel) { check(violationProgram()); }
TEST_P(EquivalenceTest, PartialOverlap)
{
    check(partialOverlapProgram());
}
TEST_P(EquivalenceTest, CallsAndStack) { check(callProgram()); }

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EquivalenceTest, ::testing::ValuesIn(all_configs),
    [](const auto &info) {
        std::string n = configName(info.param.first, info.param.second);
        for (char &c : n) {
            if (c == '/')
                c = '_';
        }
        return n;
    });

// AS with nonzero scheduler latency must also stay correct.
TEST(EquivalenceLatency, AsLatencies)
{
    Program prog = violationProgram();
    PrepassResult golden = runPrepass(prog);
    for (Cycles lat : {1u, 2u}) {
        for (SpecPolicy p : {SpecPolicy::No, SpecPolicy::Naive}) {
            RunResult timed =
                runTimed(prog, LsqModel::AS, p, lat, &golden.deps);
            expectMatchesFunctional(prog, golden, timed,
                                    configName(LsqModel::AS, p));
        }
    }
}

// ---------------------------------------------------------------------
// Behavioural properties of the policies.
// ---------------------------------------------------------------------

TEST(PolicyBehaviour, NaiveSpeculationViolates)
{
    Program prog = violationProgram();
    PrepassResult golden = runPrepass(prog);
    RunResult nav = runTimed(prog, LsqModel::NAS, SpecPolicy::Naive, 0,
                             &golden.deps);
    EXPECT_GT(nav.violations, 20u)
        << "the violation kernel must actually miss-speculate";
}

TEST(PolicyBehaviour, NoSpeculationNeverViolates)
{
    Program prog = violationProgram();
    RunResult no = runTimed(prog, LsqModel::NAS, SpecPolicy::No);
    EXPECT_EQ(no.violations, 0u);
}

TEST(PolicyBehaviour, OracleNeverViolates)
{
    Program prog = violationProgram();
    PrepassResult golden = runPrepass(prog);
    RunResult oracle = runTimed(prog, LsqModel::NAS, SpecPolicy::Oracle,
                                0, &golden.deps);
    EXPECT_EQ(oracle.violations, 0u);
}

TEST(PolicyBehaviour, SyncEliminatesMostViolations)
{
    Program prog = violationProgram();
    PrepassResult golden = runPrepass(prog);
    RunResult nav = runTimed(prog, LsqModel::NAS, SpecPolicy::Naive, 0,
                             &golden.deps);
    RunResult sync = runTimed(prog, LsqModel::NAS, SpecPolicy::SpecSync,
                              0, &golden.deps);
    EXPECT_LT(sync.violations, nav.violations / 5)
        << "SYNC must learn the repeating dependence";
}

TEST(PolicyBehaviour, AddressSchedulingAvoidsViolations)
{
    // Section 3.4: with an address-based scheduler, miss-speculations
    // are virtually non-existent.
    Program prog = violationProgram();
    PrepassResult golden = runPrepass(prog);
    RunResult as_nav = runTimed(prog, LsqModel::AS, SpecPolicy::Naive,
                                0, &golden.deps);
    RunResult nas_nav = runTimed(prog, LsqModel::NAS, SpecPolicy::Naive,
                                 0, &golden.deps);
    EXPECT_LT(as_nav.violations, nas_nav.violations / 5);
}

TEST(PolicyBehaviour, OracleBeatsNoSpeculationOnFalseDeps)
{
    Program prog = falseDepProgram();
    PrepassResult golden = runPrepass(prog);
    RunResult no =
        runTimed(prog, LsqModel::NAS, SpecPolicy::No, 0, &golden.deps);
    RunResult oracle = runTimed(prog, LsqModel::NAS, SpecPolicy::Oracle,
                                0, &golden.deps);
    EXPECT_LT(oracle.cycles, no.cycles)
        << "oracle must exploit the load/store parallelism";
}

TEST(PolicyBehaviour, FalseDependencesAreDetected)
{
    Program prog = falseDepProgram();
    PrepassResult golden = runPrepass(prog);
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::No);
    Processor proc(cfg, prog, &golden.deps);
    proc.run();
    ASSERT_TRUE(proc.halted());
    EXPECT_GT(proc.procStats().falseDepLoads.value(), 50u);
    EXPECT_GT(proc.procStats().falseDepLatency.mean(), 1.0);
}

TEST(PolicyBehaviour, AsLatencyCostsPerformance)
{
    Program prog = falseDepProgram();
    PrepassResult golden = runPrepass(prog);
    RunResult lat0 = runTimed(prog, LsqModel::AS, SpecPolicy::Naive, 0,
                              &golden.deps);
    RunResult lat2 = runTimed(prog, LsqModel::AS, SpecPolicy::Naive, 2,
                              &golden.deps);
    EXPECT_LE(lat0.cycles, lat2.cycles);
}

// ---------------------------------------------------------------------
// Pipeline mechanics.
// ---------------------------------------------------------------------

TEST(PipelineTest, SuperscalarIpcAboveOne)
{
    Program prog = aluProgram();
    RunResult r = runTimed(prog, LsqModel::NAS, SpecPolicy::Naive);
    double ipc = static_cast<double>(r.commits) / r.cycles;
    EXPECT_GT(ipc, 1.0) << "an 8-wide core must exceed IPC 1 on "
                           "independent ALU work";
}

TEST(PipelineTest, W64IsNotFasterThanW128)
{
    Program prog = falseDepProgram();
    PrepassResult golden = runPrepass(prog);

    SimConfig small = withPolicy(makeW64Config(), LsqModel::NAS,
                                 SpecPolicy::Oracle);
    Processor p64(small, prog, &golden.deps);
    p64.run();

    SimConfig big = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Oracle);
    Processor p128(big, prog, &golden.deps);
    p128.run();

    EXPECT_GE(p64.procStats().cycles.value(),
              p128.procStats().cycles.value());
}

TEST(PipelineTest, MaxInstsStopsRun)
{
    Program prog = aluProgram();
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    cfg.maxInsts = 100;
    Processor proc(cfg, prog);
    proc.run();
    EXPECT_FALSE(proc.halted());
    EXPECT_GE(proc.procStats().commits.value(), 100u);
    EXPECT_LT(proc.procStats().commits.value(),
              100u + cfg.core.commitWidth);
}

TEST(PipelineTest, RunTimingThenFastForwardStaysCorrect)
{
    // Sampled simulation: alternate timing and functional phases; the
    // final architectural state must still match pure functional.
    Program prog = recurrenceProgram(200);
    PrepassResult golden = runPrepass(prog);

    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    Processor proc(cfg, prog, &golden.deps);
    while (!proc.halted()) {
        proc.runTiming(150);
        if (proc.halted())
            break;
        proc.fastForward(100);
    }
    EXPECT_EQ(proc.memory().fingerprint(), golden.memFingerprint);
    for (unsigned r = 0; r < num_arch_regs; ++r) {
        EXPECT_EQ(proc.archState().regs[r], golden.finalState.regs[r])
            << "register " << r;
    }
}

TEST(PipelineTest, BranchMispredictsAreRecorded)
{
    // A data-dependent unpredictable branch pattern.
    ProgramBuilder b;
    b.addi(ir(1), reg_zero, 500);
    b.addi(ir(2), reg_zero, 0);
    b.li32(ir(7), 1234567);
    auto loop = b.newLabel();
    auto skip = b.newLabel();
    b.bind(loop);
    // xorshift-ish pseudo-random bit
    b.slli(ir(3), ir(7), 13);
    b.xor_(ir(7), ir(7), ir(3));
    b.srli(ir(3), ir(7), 17);
    b.xor_(ir(7), ir(7), ir(3));
    b.andi(ir(4), ir(7), 1);
    b.beq(ir(4), reg_zero, skip);
    b.addi(ir(2), ir(2), 3);
    b.bind(skip);
    b.addi(ir(1), ir(1), -1);
    b.bne(ir(1), reg_zero, loop);
    b.halt();
    Program prog = b.build();

    PrepassResult golden = runPrepass(prog);
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    Processor proc(cfg, prog, &golden.deps);
    proc.run();
    ASSERT_TRUE(proc.halted());
    EXPECT_GT(proc.procStats().branchMispredicts.value(), 50u);
    EXPECT_EQ(proc.memory().fingerprint(), golden.memFingerprint);
    EXPECT_EQ(proc.archState().regs[ir(2)],
              golden.finalState.regs[ir(2)]);
}

TEST(PipelineTest, StatsGroupExposesCounters)
{
    Program prog = aluProgram();
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    Processor proc(cfg, prog);
    proc.run();
    EXPECT_TRUE(proc.statsGroup().hasScalar("commits"));
    EXPECT_EQ(proc.statsGroup().scalarValue("commits"),
              proc.procStats().commits.value());
}


TEST(PipelineTest, OccupancyAndForwardingStats)
{
    // The occupancy distribution samples once per cycle, and the
    // store-buffer forwards loads that hit in-flight store data.
    Program prog = recurrenceProgram(100);
    PrepassResult golden = runPrepass(prog);
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Oracle);
    Processor proc(cfg, prog, &golden.deps);
    proc.run();
    ASSERT_TRUE(proc.halted());
    const ProcStats &s = proc.procStats();
    EXPECT_EQ(s.windowOccupancy.count(), s.cycles.value());
    EXPECT_GT(s.windowOccupancy.mean(), 1.0);
    // The recurrence loads a value the previous iteration stored:
    // under ORACLE the load waits for the store and forwards from it.
    EXPECT_GT(s.loadsForwarded.value(), 50u);
}


TEST(PolicyBehaviour, SelectiveInvalidationRecoversWithoutSquashing)
{
    // Paper Section 2's alternative recovery: re-execute only the
    // dependence slice. Same architectural results, fewer squashed
    // instructions, performance at least as good as squashing.
    Program prog = violationProgram();
    PrepassResult golden = runPrepass(prog);

    SimConfig squash_cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Naive);
    Processor squash_proc(squash_cfg, prog, &golden.deps);
    squash_proc.run();

    SimConfig sel_cfg = squash_cfg;
    sel_cfg.mdp.recovery = RecoveryModel::Selective;
    Processor sel_proc(sel_cfg, prog, &golden.deps);
    sel_proc.run();
    ASSERT_TRUE(sel_proc.halted());

    // Correctness is untouched.
    EXPECT_EQ(sel_proc.memory().fingerprint(), golden.memFingerprint);
    // Slices actually ran, and most violations avoided a squash.
    EXPECT_GT(sel_proc.procStats().selectiveRecoveries.value(), 20u);
    EXPECT_LT(sel_proc.procStats().squashedInsts.value(),
              squash_proc.procStats().squashedInsts.value());
    // Keeping unrelated work must not be slower than discarding it.
    EXPECT_LE(sel_proc.procStats().cycles.value(),
              squash_proc.procStats().cycles.value() * 102 / 100);
}


// The same equivalence matrix on the small (Figure 1) machine, whose
// tighter window/LSQ/store-buffer limits stress structural stalls.
class EquivalenceTestW64
    : public ::testing::TestWithParam<std::pair<LsqModel, SpecPolicy>>
{
};

TEST_P(EquivalenceTestW64, ViolationKernelOnSmallMachine)
{
    auto [model, policy] = GetParam();
    Program prog = violationProgram();
    PrepassResult golden = runPrepass(prog);
    SimConfig cfg = withPolicy(makeW64Config(), model, policy);
    cfg.maxCycles = 2'000'000;
    Processor proc(cfg, prog, &golden.deps);
    proc.run();
    ASSERT_TRUE(proc.halted());
    EXPECT_EQ(proc.memory().fingerprint(), golden.memFingerprint)
        << configName(model, policy);
    for (unsigned r = 0; r < num_arch_regs; ++r) {
        EXPECT_EQ(proc.archState().regs[r], golden.finalState.regs[r])
            << configName(model, policy) << " register " << r;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsW64, EquivalenceTestW64, ::testing::ValuesIn(all_configs),
    [](const auto &info) {
        std::string n = configName(info.param.first, info.param.second);
        for (char &c : n) {
            if (c == '/')
                c = '_';
        }
        return n;
    });

TEST(PipelineTest, SampledPhasesUnderEveryPolicy)
{
    // The sampling methodology must preserve semantics under every
    // speculation policy, not just naive.
    Program prog = violationProgram(300);
    PrepassResult golden = runPrepass(prog);
    for (auto [model, policy] : all_configs) {
        SimConfig cfg = withPolicy(makeW128Config(), model, policy);
        Processor proc(cfg, prog, &golden.deps);
        while (!proc.halted()) {
            proc.runTiming(120);
            if (proc.halted())
                break;
            if (proc.fastForward(80) == 0)
                break;
        }
        EXPECT_EQ(proc.memory().fingerprint(), golden.memFingerprint)
            << configName(model, policy);
    }
}

TEST(PipelineTest, TinyWindowStillCorrect)
{
    // Degenerate machines (window 4, single-issue-ish) exercise every
    // structural-stall path.
    Program prog = recurrenceProgram(80);
    PrepassResult golden = runPrepass(prog);
    SimConfig cfg = withPolicy(makeWindowConfig(4), LsqModel::NAS,
                               SpecPolicy::Naive);
    cfg.core.issueWidth = 2;
    cfg.core.commitWidth = 2;
    cfg.core.memPorts = 1;
    cfg.core.fuCopies = 1;
    cfg.core.lsqInputPorts = 1;
    cfg.maxCycles = 5'000'000;
    Processor proc(cfg, prog, &golden.deps);
    proc.run();
    ASSERT_TRUE(proc.halted());
    EXPECT_EQ(proc.memory().fingerprint(), golden.memFingerprint);
}

// ---------------------------------------------------------------------
// Byte-wise forwarding-source tracking (the partial-overlap violation
// hole): a load that forwarded SOME bytes from a younger store must
// still be flagged when an older store writes one of its OTHER bytes.
// ---------------------------------------------------------------------

TEST(ByteWiseViolation, DetectedUnderSquashRecovery)
{
    Program prog = byteWiseViolationProgram();
    PrepassResult golden = runPrepass(prog);
    ASSERT_TRUE(golden.halted);
    RunResult timed =
        runTimed(prog, LsqModel::NAS, SpecPolicy::Naive, 0,
                 &golden.deps);
    expectMatchesFunctional(prog, golden, timed, "NAS/NAV byte-wise");
    EXPECT_GE(timed.violations, 1u)
        << "the stale byte 0 must be detected as a violation";
}

TEST(ByteWiseViolation, DetectedUnderSelectiveRecovery)
{
    Program prog = byteWiseViolationProgram();
    PrepassResult golden = runPrepass(prog);
    ASSERT_TRUE(golden.halted);
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    cfg.mdp.recovery = RecoveryModel::Selective;
    cfg.maxCycles = 2'000'000;
    Processor proc(cfg, prog, &golden.deps);
    proc.run();
    ASSERT_TRUE(proc.halted());
    EXPECT_GE(proc.procStats().memOrderViolations.value(), 1u);
    for (unsigned r = 0; r < num_arch_regs; ++r) {
        EXPECT_EQ(proc.archState().regs[r], golden.finalState.regs[r])
            << "register " << r;
    }
}

TEST(StoreBufferEntry, OverlapAtTopOfAddressSpace)
{
    // addr + size overflowing to zero must not hide an overlap (or
    // invent one across the wrap).
    SbEntry e;
    e.addr = ~Addr(0) - 3; // writes the top 4 bytes
    e.size = 4;
    e.addrValid = true;
    EXPECT_TRUE(e.overlaps(~Addr(0) - 1, 2));
    EXPECT_TRUE(e.overlaps(~Addr(0), 1));
    EXPECT_TRUE(e.overlaps(~Addr(0) - 7, 8));
    EXPECT_FALSE(e.overlaps(0, 4));
    EXPECT_FALSE(e.overlaps(~Addr(0) - 7, 4));
    EXPECT_TRUE(e.coversByte(~Addr(0)));
    EXPECT_TRUE(e.coversByte(~Addr(0) - 3));
    EXPECT_FALSE(e.coversByte(0));
    EXPECT_FALSE(e.coversByte(~Addr(0) - 4));
}

TEST(PipelineTest, StoreBufferPressureStallsButStaysCorrect)
{
    // A store burst larger than the store buffer forces dispatch
    // stalls on a full buffer.
    ProgramBuilder b;
    Addr buf = b.dataAlloc(4 * 512);
    b.la(ir(1), buf);
    b.addi(ir(2), reg_zero, 400);
    auto loop = b.hereLabel();
    b.sw(ir(2), ir(1), 0);
    b.addi(ir(1), ir(1), 4);
    b.addi(ir(2), ir(2), -1);
    b.bne(ir(2), reg_zero, loop);
    b.halt();
    Program prog = b.build();
    PrepassResult golden = runPrepass(prog);

    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    cfg.core.storeBufferSize = 8; // tiny
    cfg.maxCycles = 5'000'000;
    Processor proc(cfg, prog, &golden.deps);
    proc.run();
    ASSERT_TRUE(proc.halted());
    EXPECT_EQ(proc.memory().fingerprint(), golden.memFingerprint);
    EXPECT_EQ(proc.procStats().committedStores.value(), 400u);
}

} // anonymous namespace
} // namespace cwsim
