/**
 * @file
 * Tests for the speculation observatory's wire format: DepProfile
 * collection and serialization, the strict DepProfileFile
 * loader/validator (torn blocks, interleaved runs, version drift),
 * the hot-edge encoding, and the DepProfManager file writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "base/jsonl.hh"
#include "mdp/dep_profile.hh"
#include "obs/depprof.hh"
#include "sim/stats.hh"

namespace cwsim
{
namespace
{

using mdp::DepProfileFile;
using mdp::DepProfileRun;
using obs::DepProfile;

/** Scratch directory in the build tree, removed on destruction. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &tag)
        : path(tag + "." + std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~ScratchDir() { std::filesystem::remove_all(path); }

    std::string path;
};

/** A profile with one of everything, the test-suite fixture. */
DepProfile
makeProfile(const std::string &run = "129.compress NAS/NAV W128")
{
    DepProfile prof("proc", run);
    prof.noteLoadExec(0x100, true);
    prof.noteLoadExec(0x100, false);
    prof.noteLoadExec(0x104, false);
    prof.noteLoadReplay(0x104);
    prof.noteSelHold(0x100);
    prof.noteBarrierHold(0x104);
    prof.noteLoadCommit(0x100);
    prof.noteLoadCommit(0x104);
    prof.noteFalseDep(0x100, 7);
    prof.noteTrueDep(0x104);
    prof.noteStoreCommit(0x200);
    prof.noteStoreBarrier(0x200);
    prof.noteViolation(0x200, 0x100, 5, true);
    prof.noteViolation(0x200, 0x100, 9, false);
    prof.noteViolation(0x200, 0x104, 3, true);
    prof.noteSyncWait(0x104, 0x200, 12);
    prof.noteMdptAlloc(0x100);
    prof.noteMdptEvict(0x104);
    prof.noteMdptPair(0x100, 0x200, false);
    prof.noteMdptPair(0x100, 0x200, true);
    prof.noteMdptMissSpec(0x100);
    prof.noteMdptSample(1000, 3, 0.5);
    prof.noteMdptSample(2000, 5, 0.75);
    return prof;
}

TEST(DepDistBucket, Log2GeometryAndLabels)
{
    EXPECT_EQ(obs::depDistBucket(0), 0u);
    EXPECT_EQ(obs::depDistBucket(1), 0u);
    EXPECT_EQ(obs::depDistBucket(2), 1u);
    EXPECT_EQ(obs::depDistBucket(3), 1u);
    EXPECT_EQ(obs::depDistBucket(4), 2u);
    EXPECT_EQ(obs::depDistBucket(7), 2u);
    EXPECT_EQ(obs::depDistBucket(8), 3u);
    EXPECT_EQ(obs::depDistBucket(2047), 10u);
    EXPECT_EQ(obs::depDistBucket(2048), 11u);
    // The last bucket is open-ended.
    EXPECT_EQ(obs::depDistBucket(1ull << 40), 11u);

    EXPECT_EQ(obs::depDistBucketLabel(0), "0-1");
    EXPECT_EQ(obs::depDistBucketLabel(1), "2-3");
    EXPECT_EQ(obs::depDistBucketLabel(2), "4-7");
    EXPECT_EQ(obs::depDistBucketLabel(11), "2048+");
}

TEST(DepProfile, CollectsAndSerializesRoundTrip)
{
    DepProfile prof = makeProfile();
    EXPECT_EQ(prof.numLoads(), 2u);
    EXPECT_EQ(prof.numStores(), 1u);
    EXPECT_EQ(prof.numEdges(), 2u);

    std::vector<std::string> lines;
    prof.serialize(lines);
    // header + 2 loads + 1 store + 2 edges + 3 mdpt pcs + 2 samples.
    ASSERT_EQ(lines.size(), 11u);

    DepProfileFile file;
    ASSERT_TRUE(file.parseLines(lines))
        << (file.errors().empty() ? "" : file.errors().front());
    ASSERT_EQ(file.runs().size(), 1u);
    const DepProfileRun &run = file.runs().front();
    EXPECT_EQ(run.run, "129.compress NAS/NAV W128");
    EXPECT_EQ(run.sim, "proc");

    // Load counters survive intact.
    ASSERT_EQ(run.loads.size(), 2u);
    const obs::DepLoadCounters &l100 = run.loads.at(0x100);
    EXPECT_EQ(l100.execs.value(), 2u);
    EXPECT_EQ(l100.forwards.value(), 1u);
    EXPECT_EQ(l100.violations.value(), 2u);
    EXPECT_EQ(l100.selHolds.value(), 1u);
    EXPECT_EQ(l100.falseDepLoads.value(), 1u);
    EXPECT_EQ(l100.falseDepCycles.value(), 7u);
    EXPECT_EQ(l100.commits.value(), 1u);
    const obs::DepLoadCounters &l104 = run.loads.at(0x104);
    EXPECT_EQ(l104.replays.value(), 1u);
    EXPECT_EQ(l104.barrierHolds.value(), 1u);
    EXPECT_EQ(l104.syncWaits.value(), 1u);
    EXPECT_EQ(l104.trueDepLoads.value(), 1u);

    // Store counters.
    ASSERT_EQ(run.stores.size(), 1u);
    const obs::DepStoreCounters &s200 = run.stores.at(0x200);
    EXPECT_EQ(s200.commits.value(), 1u);
    EXPECT_EQ(s200.violationsCaused.value(), 3u);
    EXPECT_EQ(s200.barriers.value(), 1u);
    EXPECT_EQ(s200.syncProduces.value(), 1u);

    // Edge counters, overlap kinds, and the distance histogram.
    ASSERT_EQ(run.edges.size(), 2u);
    const obs::DepEdgeCounters &e100 =
        run.edges.at(obs::DepEdgeKey(0x200, 0x100));
    EXPECT_EQ(e100.violations.value(), 2u);
    EXPECT_EQ(e100.fullOverlaps.value(), 1u);
    EXPECT_EQ(e100.partialOverlaps.value(), 1u);
    EXPECT_EQ(e100.dist[obs::depDistBucket(5)], 1u);
    EXPECT_EQ(e100.dist[obs::depDistBucket(9)], 1u);
    const obs::DepEdgeCounters &e104 =
        run.edges.at(obs::DepEdgeKey(0x200, 0x104));
    EXPECT_EQ(e104.violations.value(), 1u);
    EXPECT_EQ(e104.syncs.value(), 1u);
    EXPECT_EQ(e104.dist[obs::depDistBucket(3)], 1u);
    EXPECT_EQ(e104.dist[obs::depDistBucket(12)], 1u);

    // MDPT introspection: pair() counts both sides, merges subset.
    ASSERT_EQ(run.mdpt.size(), 3u);
    EXPECT_EQ(run.mdpt.at(0x100).allocs.value(), 1u);
    EXPECT_EQ(run.mdpt.at(0x100).pairs.value(), 2u);
    EXPECT_EQ(run.mdpt.at(0x100).merges.value(), 1u);
    EXPECT_EQ(run.mdpt.at(0x100).missSpecs.value(), 1u);
    EXPECT_EQ(run.mdpt.at(0x104).evicts.value(), 1u);
    EXPECT_EQ(run.mdpt.at(0x200).pairs.value(), 2u);

    ASSERT_EQ(run.mdptSamples.size(), 2u);
    EXPECT_EQ(run.mdptSamples[0].cycle, 1000u);
    EXPECT_EQ(run.mdptSamples[0].occupancy, 3u);
    EXPECT_DOUBLE_EQ(run.mdptSamples[0].meanConfidence, 0.5);
    EXPECT_DOUBLE_EQ(run.mdptSamples[1].meanConfidence, 0.75);

    EXPECT_NE(file.findRun("129.compress NAS/NAV W128"), nullptr);
    EXPECT_EQ(file.findRun("no such run"), nullptr);
}

TEST(DepProfile, HotEdgesRankedAndCapped)
{
    DepProfile prof("proc", "r");
    prof.noteViolation(0x200, 0x100, 5, true); // 1 violation
    prof.noteViolation(0x210, 0x100, 5, true); // 2 violations
    prof.noteViolation(0x210, 0x100, 5, true);
    prof.noteSyncWait(0x104, 0x220, 2);        // 0 violations, 1 sync

    // Ranked by violations desc, then syncs desc, then key.
    EXPECT_EQ(prof.hotEdges(8),
              "0x210-0x100:2:0;0x200-0x100:1:0;0x220-0x104:0:1");
    EXPECT_EQ(prof.hotEdges(1), "0x210-0x100:2:0");
    EXPECT_EQ(prof.hotEdges(0), "");
    EXPECT_EQ(DepProfile("proc", "empty").hotEdges(8), "");
}

TEST(DepProfile, RegistersPerPcStatsUnderParentGroup)
{
    // With a stats parent, per-PC load/store counters appear in the
    // flat-JSON stats export under "<parent>.depprof.*" with hex-PC
    // key segments (the proc path; split passes no parent).
    stats::StatGroup root("proc");
    DepProfile prof("proc", "r", &root);
    prof.noteLoadExec(0x1a2b, true);
    prof.noteViolation(0x40, 0x1a2b, 2, true);
    prof.noteStoreCommit(0x40);

    std::map<std::string, std::string> fields;
    ASSERT_TRUE(parseFlatJson(root.jsonString(), fields));
    EXPECT_EQ(fields.at("proc.depprof.load_0x1a2b.execs"), "1");
    EXPECT_EQ(fields.at("proc.depprof.load_0x1a2b.forwards"), "1");
    EXPECT_EQ(fields.at("proc.depprof.load_0x1a2b.violations"), "1");
    EXPECT_EQ(fields.at("proc.depprof.store_0x40.commits"), "1");
    EXPECT_EQ(fields.at("proc.depprof.store_0x40.violations_caused"),
              "1");

    // Stats-less profiles (no parent) collect identically.
    DepProfile bare("split", "r");
    bare.noteLoadExec(0x1a2b, true);
    EXPECT_EQ(bare.numLoads(), 1u);
}

TEST(DepProfileFile, RejectsUnknownVersion)
{
    std::vector<std::string> lines;
    makeProfile().serialize(lines);
    // Every line starts with {"v":1, — stamp a future version.
    ASSERT_EQ(lines[0].find("{\"v\":1,"), 0u);
    lines[0].replace(0, 7, "{\"v\":9,");

    DepProfileFile file;
    EXPECT_FALSE(file.parseLines(lines));
    ASSERT_FALSE(file.errors().empty());
    EXPECT_NE(file.errors().front().find("unsupported profile version"),
              std::string::npos);
}

TEST(DepProfileFile, DetectsTornHeaderCounts)
{
    std::vector<std::string> lines;
    makeProfile().serialize(lines);

    // Drop the last record: the header promised more than the block
    // carries, the signature of a truncated (torn) profile.
    lines.pop_back();
    DepProfileFile file;
    EXPECT_FALSE(file.parseLines(lines));
    ASSERT_FALSE(file.errors().empty());
    EXPECT_NE(file.errors().front().find("header promised"),
              std::string::npos);
    // The damaged run is still surfaced (salvage, not silence).
    EXPECT_EQ(file.runs().size(), 1u);
}

TEST(DepProfileFile, DetectsInterleavedRuns)
{
    std::vector<std::string> a, b;
    makeProfile("run-a").serialize(a);
    makeProfile("run-b").serialize(b);

    // Interleave: a's header, then one of b's records inside a's block.
    std::vector<std::string> lines;
    lines.push_back(a[0]);
    lines.push_back(b[1]);
    DepProfileFile file;
    EXPECT_FALSE(file.parseLines(lines));
    bool flagged = false;
    for (const std::string &e : file.errors())
        flagged |= e.find("interleaved") != std::string::npos;
    EXPECT_TRUE(flagged);

    // Two complete blocks back to back validate fine.
    lines = a;
    lines.insert(lines.end(), b.begin(), b.end());
    DepProfileFile both;
    EXPECT_TRUE(both.parseLines(lines))
        << (both.errors().empty() ? "" : both.errors().front());
    ASSERT_EQ(both.runs().size(), 2u);
    EXPECT_NE(both.findRun("run-a"), nullptr);
    EXPECT_NE(both.findRun("run-b"), nullptr);
}

TEST(DepProfileFile, RejectsRecordsBeforeAnyHeader)
{
    std::vector<std::string> lines;
    makeProfile().serialize(lines);
    lines.erase(lines.begin()); // headerless block
    DepProfileFile file;
    EXPECT_FALSE(file.parseLines(lines));
    ASSERT_FALSE(file.errors().empty());
    EXPECT_NE(file.errors().front().find("before any header"),
              std::string::npos);
}

TEST(DepProfileFile, RejectsMalformedDistHistograms)
{
    // A hand-built minimal block with one edge whose dist field is
    // fed every malformed shape in turn.
    auto block = [](const std::string &dist) {
        std::vector<std::string> lines;
        lines.push_back(
            "{\"v\":1,\"kind\":\"header\",\"run\":\"r\",\"sim\":"
            "\"proc\",\"loads\":0,\"stores\":0,\"edges\":1,"
            "\"mdpt_pcs\":0,\"mdpt_samples\":0}");
        lines.push_back(
            "{\"v\":1,\"kind\":\"edge\",\"run\":\"r\",\"store_pc\":"
            "\"0x200\",\"load_pc\":\"0x100\",\"violations\":1,"
            "\"syncs\":0,\"full_overlaps\":1,\"partial_overlaps\":0,"
            "\"dist\":\"" + dist + "\"}");
        return lines;
    };

    DepProfileFile ok;
    EXPECT_TRUE(ok.parseLines(block("2:1")));
    EXPECT_TRUE(ok.parseLines(block("0:3;11:2")));
    // "" is a legal (all-zero) histogram, and a trailing ';' is
    // tolerated (the decoder consumes entries, not separators).
    EXPECT_TRUE(ok.parseLines(block("")));
    EXPECT_TRUE(ok.parseLines(block("2:1;")));

    for (const char *bad :
         {"2", "2:", ":1", "2:0", "99:1", "2:1;2:1", "2:x", "x:1"}) {
        DepProfileFile file;
        EXPECT_FALSE(file.parseLines(block(bad))) << bad;
    }
}

TEST(DepProfManager, WritesBlocksTheLoaderValidates)
{
    ScratchDir dir("depprof_mgr_test");
    std::string path = dir.path + "/test.depprof.jsonl";

    obs::DepProfManager &mgr = obs::DepProfManager::instance();
    mgr.resetForTesting();
    EXPECT_FALSE(mgr.active());
    EXPECT_FALSE(obs::depProfilingActive());

    mgr.enable(path);
    EXPECT_TRUE(mgr.active());
    EXPECT_TRUE(obs::depProfilingActive());
    EXPECT_EQ(mgr.path(), path);

    mgr.writeRun(makeProfile("run-one"));
    mgr.writeRun(makeProfile("run-two"));
    mgr.resetForTesting();
    EXPECT_FALSE(obs::depProfilingActive());

    DepProfileFile file;
    std::string err;
    ASSERT_TRUE(file.load(path, &err)) << err;
    EXPECT_TRUE(file.valid());
    ASSERT_EQ(file.runs().size(), 2u);
    EXPECT_NE(file.findRun("run-one"), nullptr);
    EXPECT_NE(file.findRun("run-two"), nullptr);
    // Both blocks carry the same profile; spot-check the second.
    EXPECT_EQ(file.findRun("run-two")->loads.size(), 2u);
    EXPECT_EQ(file.findRun("run-two")->edges.size(), 2u);
}

TEST(DepProfManager, LoadReportsUnreadableFiles)
{
    DepProfileFile file;
    std::string err;
    EXPECT_FALSE(file.load("no/such/file.depprof.jsonl", &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);
    EXPECT_TRUE(file.errors().empty());
}

TEST(DepProfManager, EnableUsesDefaultPathForEmptyString)
{
    obs::DepProfManager &mgr = obs::DepProfManager::instance();
    mgr.resetForTesting();
    mgr.enable();
    EXPECT_EQ(mgr.path(), "cwsim.depprof.jsonl");
    mgr.resetForTesting();
}

} // anonymous namespace
} // namespace cwsim
