/**
 * @file
 * Property-based fuzzing of the architectural-equivalence invariant:
 * randomly generated (but guaranteed-terminating) programs must commit
 * IDENTICAL architectural state under the functional interpreter and
 * under the timing core in every speculation configuration. This is the
 * strongest guard against subtle bugs in operand capture, squash
 * recovery, store-buffer forwarding, and the violation/replay paths.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "cpu/processor.hh"
#include "isa/builder.hh"
#include "mdp/oracle.hh"
#include "sim/config.hh"

namespace cwsim
{
namespace
{

/**
 * Generate a random terminating program: a counted outer loop whose
 * body mixes ALU work, loads/stores into two small regions (creating
 * plenty of genuine memory dependences and races), FP arithmetic, and
 * data-dependent forward branches.
 */
Program
randomProgram(uint64_t seed)
{
    Random rng(seed);
    ProgramBuilder b;

    constexpr unsigned region_words = 64;
    Addr region_a = b.dataAlloc(4 * region_words, 8);
    Addr region_b = b.dataAlloc(8 * region_words, 8);
    for (unsigned i = 0; i < region_words; ++i) {
        b.dataW32(region_a + 4 * i,
                  static_cast<uint32_t>(rng.next()));
        b.dataF64(region_b + 8 * i, 0.5 + rng.real());
    }

    const RegId base_a = ir(16), base_b = ir(17), counter = ir(20),
                tmp = ir(15);
    b.la(base_a, region_a);
    b.la(base_b, region_b);
    b.li32(counter, 40 + static_cast<uint32_t>(rng.below(60)));

    auto scratch_int = [&] { return ir(1 + rng.below(12)); };
    auto scratch_fp = [&] { return fr(rng.below(8)); };
    auto word_off = [&] {
        return static_cast<int32_t>(4 * rng.below(region_words));
    };
    auto dword_off = [&] {
        return static_cast<int32_t>(8 * rng.below(region_words));
    };

    auto loop = b.hereLabel();

    unsigned body_len = 10 + static_cast<unsigned>(rng.below(30));
    for (unsigned i = 0; i < body_len; ++i) {
        switch (rng.below(12)) {
          case 0:
            b.add(scratch_int(), scratch_int(), scratch_int());
            break;
          case 1:
            b.mul(scratch_int(), scratch_int(), scratch_int());
            break;
          case 2:
            b.xori(scratch_int(), scratch_int(),
                   static_cast<int32_t>(rng.below(1024)));
            break;
          case 3:
            b.srai(scratch_int(), scratch_int(),
                   static_cast<int32_t>(rng.below(31)));
            break;
          case 4:
            b.lw(scratch_int(), base_a, word_off());
            break;
          case 5:
            b.sw(scratch_int(), base_a, word_off());
            break;
          case 6:
            b.lbu(scratch_int(), base_a, word_off());
            break;
          case 7:
            b.sb(scratch_int(), base_a, word_off());
            break;
          case 8:
            b.ld_f(scratch_fp(), base_b, dword_off());
            break;
          case 9:
            b.sd_f(scratch_fp(), base_b, dword_off());
            break;
          case 10:
            b.fadd_d(scratch_fp(), scratch_fp(), scratch_fp());
            break;
          case 11: {
            // Data-dependent forward skip over 1-3 instructions.
            auto skip = b.newLabel();
            b.slti(tmp, scratch_int(),
                   static_cast<int32_t>(rng.range(-100, 100)));
            b.bne(tmp, reg_zero, skip);
            unsigned skipped = 1 + static_cast<unsigned>(rng.below(3));
            for (unsigned k = 0; k < skipped; ++k) {
                if (rng.chance(0.5))
                    b.lw(scratch_int(), base_a, word_off());
                else
                    b.add(scratch_int(), scratch_int(), scratch_int());
            }
            b.bind(skip);
            break;
          }
        }
    }

    b.addi(counter, counter, -1);
    b.bne(counter, reg_zero, loop);
    b.halt();
    return b.build();
}

/**
 * Directed partial-overlap stressor: every access lands in ONE 16-byte
 * cell, with 1-, 4-, and 8-byte stores and loads at clashing offsets
 * and about half the store data fed through short mul chains so older
 * stores routinely execute after younger ones — the pattern that
 * separates per-byte forwarding-source tracking from a scalar
 * youngest-source summary.
 */
Program
partialOverlapStress(uint64_t seed)
{
    Random rng(seed);
    ProgramBuilder b;

    Addr cell = b.dataAlloc(16, 8);
    for (unsigned i = 0; i < 4; ++i)
        b.dataW32(cell + 4 * i, static_cast<uint32_t>(rng.next()));

    const RegId base = ir(16), counter = ir(20);
    b.la(base, cell);
    b.li32(counter, 24 + static_cast<uint32_t>(rng.below(24)));

    auto scratch_int = [&] { return ir(1 + rng.below(12)); };
    auto scratch_fp = [&] { return fr(rng.below(8)); };

    auto loop = b.hereLabel();

    unsigned body_len = 12 + static_cast<unsigned>(rng.below(20));
    for (unsigned i = 0; i < body_len; ++i) {
        // Half the stores get slow (mul-fed) data.
        auto slow_data = [&](RegId r) {
            if (rng.chance(0.5)) {
                b.mul(r, r, counter);
                b.mul(r, r, r);
            }
            return r;
        };
        switch (rng.below(8)) {
          case 0:
            b.sb(slow_data(scratch_int()), base,
                 static_cast<int32_t>(rng.below(16)));
            break;
          case 1:
            b.sw(slow_data(scratch_int()), base,
                 static_cast<int32_t>(4 * rng.below(4)));
            break;
          case 2:
            // 8-byte store of whatever bits the FP reg holds; pure
            // move, no arithmetic, so arbitrary bit patterns stay
            // deterministic.
            b.sd_f(scratch_fp(), base,
                   static_cast<int32_t>(8 * rng.below(2)));
            break;
          case 3:
            b.lbu(scratch_int(), base,
                  static_cast<int32_t>(rng.below(16)));
            break;
          case 4:
            b.lw(scratch_int(), base,
                 static_cast<int32_t>(4 * rng.below(4)));
            break;
          case 5:
            b.ld_f(scratch_fp(), base,
                   static_cast<int32_t>(8 * rng.below(2)));
            break;
          case 6:
            b.add(scratch_int(), scratch_int(), scratch_int());
            break;
          case 7:
            b.xori(scratch_int(), scratch_int(),
                   static_cast<int32_t>(rng.below(1024)));
            break;
        }
    }

    b.addi(counter, counter, -1);
    b.bne(counter, reg_zero, loop);
    b.halt();
    return b.build();
}

class FuzzEquivalence : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzEquivalence, AllConfigsMatchFunctional)
{
    Program prog = randomProgram(GetParam());
    PrepassResult golden = runPrepass(prog, {2'000'000, false});
    ASSERT_TRUE(golden.halted) << "generator produced a hung program";

    const std::tuple<LsqModel, SpecPolicy, Cycles> configs[] = {
        {LsqModel::NAS, SpecPolicy::No, 0},
        {LsqModel::NAS, SpecPolicy::Naive, 0},
        {LsqModel::NAS, SpecPolicy::Selective, 0},
        {LsqModel::NAS, SpecPolicy::StoreBarrier, 0},
        {LsqModel::NAS, SpecPolicy::SpecSync, 0},
        {LsqModel::NAS, SpecPolicy::Oracle, 0},
        {LsqModel::AS, SpecPolicy::No, 0},
        {LsqModel::AS, SpecPolicy::Naive, 0},
        {LsqModel::AS, SpecPolicy::Naive, 1},
        {LsqModel::AS, SpecPolicy::Naive, 2},
    };

    // Also fuzz the selective-invalidation recovery extension.
    auto run_one = [&](SimConfig cfg, const std::string &what) {
        cfg.maxCycles = 20'000'000;
        Processor proc(cfg, prog, &golden.deps);
        proc.run();
        ASSERT_TRUE(proc.halted()) << what;
        EXPECT_EQ(proc.procStats().commits.value(), golden.instCount)
            << what;
        EXPECT_EQ(proc.memory().fingerprint(), golden.memFingerprint)
            << what;
        for (unsigned r = 0; r < num_arch_regs; ++r) {
            ASSERT_EQ(proc.archState().regs[r],
                      golden.finalState.regs[r])
                << what << " register " << r;
        }
    };

    {
        SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                                   SpecPolicy::Naive);
        cfg.mdp.recovery = RecoveryModel::Selective;
        run_one(cfg, "NAS/NAV+selective seed " +
                         std::to_string(GetParam()));
    }

    for (auto [model, policy, lat] : configs) {
        SimConfig cfg = withPolicy(makeW128Config(), model, policy, lat);
        cfg.maxCycles = 20'000'000;
        Processor proc(cfg, prog, &golden.deps);
        proc.run();
        std::string what = cfg.name() + "@" + std::to_string(lat) +
                           " seed " + std::to_string(GetParam());
        ASSERT_TRUE(proc.halted()) << what;
        EXPECT_EQ(proc.procStats().commits.value(), golden.instCount)
            << what;
        EXPECT_EQ(proc.memory().fingerprint(), golden.memFingerprint)
            << what;
        for (unsigned r = 0; r < num_arch_regs; ++r) {
            ASSERT_EQ(proc.archState().regs[r],
                      golden.finalState.regs[r])
                << what << " register " << r;
        }
    }
}

TEST_P(FuzzEquivalence, PartialOverlapStressAllConfigs)
{
    Program prog = partialOverlapStress(GetParam() * 104729 + 7);
    PrepassResult golden = runPrepass(prog, {2'000'000, false});
    ASSERT_TRUE(golden.halted) << "generator produced a hung program";

    const std::pair<LsqModel, SpecPolicy> configs[] = {
        {LsqModel::NAS, SpecPolicy::No},
        {LsqModel::NAS, SpecPolicy::Naive},
        {LsqModel::NAS, SpecPolicy::Selective},
        {LsqModel::NAS, SpecPolicy::StoreBarrier},
        {LsqModel::NAS, SpecPolicy::SpecSync},
        {LsqModel::NAS, SpecPolicy::Oracle},
        {LsqModel::AS, SpecPolicy::No},
        {LsqModel::AS, SpecPolicy::Naive},
    };

    for (auto [model, policy] : configs) {
        for (RecoveryModel recovery :
             {RecoveryModel::Squash, RecoveryModel::Selective}) {
            SimConfig cfg = withPolicy(makeW128Config(), model, policy);
            cfg.mdp.recovery = recovery;
            cfg.maxCycles = 20'000'000;
            Processor proc(cfg, prog, &golden.deps);
            proc.run();
            std::string what =
                cfg.name() +
                (recovery == RecoveryModel::Selective ? "+sel" : "") +
                " seed " + std::to_string(GetParam());
            ASSERT_TRUE(proc.halted()) << what;
            EXPECT_EQ(proc.memory().fingerprint(), golden.memFingerprint)
                << what;
            for (unsigned r = 0; r < num_arch_regs; ++r) {
                ASSERT_EQ(proc.archState().regs[r],
                          golden.finalState.regs[r])
                    << what << " register " << r;
            }
        }
    }
}

TEST_P(FuzzEquivalence, SmallWindowAlsoMatches)
{
    Program prog = randomProgram(GetParam() * 7919 + 13);
    PrepassResult golden = runPrepass(prog, {2'000'000, false});
    ASSERT_TRUE(golden.halted);

    SimConfig cfg = withPolicy(makeW64Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    cfg.maxCycles = 20'000'000;
    Processor proc(cfg, prog, &golden.deps);
    proc.run();
    ASSERT_TRUE(proc.halted());
    EXPECT_EQ(proc.memory().fingerprint(), golden.memFingerprint);
    for (unsigned r = 0; r < num_arch_regs; ++r) {
        ASSERT_EQ(proc.archState().regs[r], golden.finalState.regs[r])
            << "register " << r;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Range<uint64_t>(1, 21));

} // anonymous namespace
} // namespace cwsim
