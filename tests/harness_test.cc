/**
 * @file
 * Tests for the experiment harness: workload/pre-pass caching, run
 * plumbing, and the aggregation helpers every bench binary relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/harness.hh"

namespace cwsim
{
namespace
{

using harness::Runner;

TEST(GeomeanTest, Basics)
{
    EXPECT_DOUBLE_EQ(harness::geomean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(harness::geomean({1.0, 4.0}), 2.0);
    EXPECT_NEAR(harness::geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    // Order independence.
    EXPECT_NEAR(harness::geomean({0.5, 8.0}), harness::geomean({8.0, 0.5}),
                1e-12);
}

TEST(GeomeanTest, SkipsAndCountsUnusableEntries)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();

    // Failed runs (NaN metrics) and degenerate values are dropped
    // from the mean but reported via warn() so a half-failed sweep is
    // visible; the usable entries still average correctly.
    EXPECT_DOUBLE_EQ(harness::geomean({nan, 4.0}), 4.0);
    EXPECT_DOUBLE_EQ(harness::geomean({-1.0, 0.0, 2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(harness::geomean({inf, 9.0}), 9.0);

    // Nothing usable at all: NaN, not a crash and not a fake average.
    EXPECT_TRUE(std::isnan(harness::geomean({})));
    EXPECT_TRUE(std::isnan(harness::geomean({nan, nan})));
    EXPECT_TRUE(std::isnan(harness::geomean({0.0, -3.0})));
}

TEST(FormatTest, Speedups)
{
    EXPECT_EQ(harness::formatSpeedup(1.123), "+12.3%");
    EXPECT_EQ(harness::formatSpeedup(0.955), "-4.5%");
    EXPECT_EQ(harness::formatSpeedup(1.0), "+0.0%");
}

TEST(FormatTest, Percentages)
{
    EXPECT_EQ(harness::formatPct(0.0123, 2), "1.23%");
    EXPECT_EQ(harness::formatPct(0.5), "50.0%");
    EXPECT_EQ(harness::formatPct(0.000012, 4), "0.0012%");
}

TEST(FormatTest, MeanSpeedupAcrossKeys)
{
    std::map<std::string, double> num{{"a", 2.0}, {"b", 8.0}};
    std::map<std::string, double> den{{"a", 1.0}, {"b", 2.0}};
    // Ratios 2 and 4 -> geomean sqrt(8).
    EXPECT_NEAR(harness::meanSpeedup(num, den, {"a", "b"}),
                std::sqrt(8.0), 1e-12);
}

TEST(RunnerTest, CachesWorkloadAndPrepass)
{
    Runner runner(10'000);
    const Workload &w1 = runner.workload("132.ijpeg");
    const Workload &w2 = runner.workload("132.ijpeg");
    EXPECT_EQ(&w1, &w2);
    const PrepassResult &p1 = runner.prepass("132.ijpeg");
    const PrepassResult &p2 = runner.prepass("132.ijpeg");
    EXPECT_EQ(&p1, &p2);
    EXPECT_TRUE(p1.halted);
}

TEST(RunnerTest, RunProducesConsistentResult)
{
    Runner runner(10'000);
    harness::RunResult r = runner.run(
        "132.ijpeg",
        withPolicy(makeW128Config(), LsqModel::NAS, SpecPolicy::Naive));
    EXPECT_EQ(r.workload, "132.ijpeg");
    EXPECT_EQ(r.config, "NAS/NAV");
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.commits, 5'000u);
    EXPECT_GT(r.committedLoads, 0u);
    EXPECT_GT(r.ipc(), 0.1);
    // Commits must equal the functional instruction count.
    EXPECT_EQ(r.commits, runner.prepass("132.ijpeg").instCount);
}

TEST(RunnerTest, RunsAreDeterministic)
{
    Runner runner(10'000);
    SimConfig cfg =
        withPolicy(makeW128Config(), LsqModel::NAS, SpecPolicy::Naive);
    harness::RunResult a = runner.run("129.compress", cfg);
    harness::RunResult b = runner.run("129.compress", cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}

TEST(RunnerTest, ArenaReuseAcrossRunsIsBitIdentical)
{
    // Three consecutive runs in one process: the second and third
    // bump through the per-run arena's recycled chunks (the harness
    // resets it after each run), and recycled memory must not leak
    // any state into the stats. Use a policy that exercises the
    // store buffer's synonym lists and replay machinery.
    Runner runner(10'000);
    SimConfig cfg =
        withPolicy(makeW128Config(), LsqModel::NAS, SpecPolicy::SpecSync);
    harness::RunResult a = runner.run("126.gcc", cfg);
    harness::RunResult b = runner.run("126.gcc", cfg);
    harness::RunResult c = runner.run("126.gcc", cfg);
    ASSERT_TRUE(a.ok);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(b.cycles, c.cycles);
    EXPECT_EQ(a.violations, c.violations);
    EXPECT_EQ(a.replays, c.replays);
    EXPECT_EQ(a.squashedInsts, c.squashedInsts);
    EXPECT_EQ(a.branchMispredicts, c.branchMispredicts);
    for (size_t i = 0; i < a.cpiSlots.size(); ++i)
        EXPECT_EQ(a.cpiSlots[i], c.cpiSlots[i]) << "cpi slot " << i;
}

TEST(RunnerTest, ShortNamesWork)
{
    Runner runner(10'000);
    harness::RunResult r = runner.run(
        "107", withPolicy(makeW128Config(), LsqModel::NAS,
                          SpecPolicy::No));
    EXPECT_EQ(r.workload, "107");
    EXPECT_GT(r.falseDepLoads, 0u);
}

TEST(RunnerTest, BenchScaleDefault)
{
    // Without the env var, the default applies.
    unsetenv("CWSIM_SCALE");
    EXPECT_EQ(harness::benchScale(), 80'000u);
    setenv("CWSIM_SCALE", "123456", 1);
    EXPECT_EQ(harness::benchScale(), 123'456u);
    setenv("CWSIM_SCALE", "12", 1); // too small: ignored
    EXPECT_EQ(harness::benchScale(), 80'000u);
    unsetenv("CWSIM_SCALE");
}

} // anonymous namespace
} // namespace cwsim
