/**
 * @file
 * Cross-module integration tests: the paper's qualitative findings,
 * asserted as invariants over the real workload suite. These are the
 * properties EXPERIMENTS.md reports quantitatively; here they gate the
 * build.
 */

#include <gtest/gtest.h>

#include "harness/harness.hh"
#include "sim/config.hh"

namespace cwsim
{
namespace
{

using harness::RunResult;
using harness::Runner;

constexpr uint64_t test_scale = 40'000;

/** One shared runner so pre-passes are computed once. */
Runner &
runner()
{
    static Runner r(test_scale);
    return r;
}

RunResult
run(const std::string &name, LsqModel model, SpecPolicy policy,
    Cycles lat = 0)
{
    return runner().run(name,
                        withPolicy(makeW128Config(), model, policy,
                                   lat));
}

class WorkloadInvariants : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadInvariants, OracleNeverSlowerThanNoSpeculation)
{
    // Figure 1: exploiting load/store parallelism always helps.
    RunResult no = run(GetParam(), LsqModel::NAS, SpecPolicy::No);
    RunResult oracle =
        run(GetParam(), LsqModel::NAS, SpecPolicy::Oracle);
    EXPECT_GE(oracle.ipc(), no.ipc() * 0.999);
    EXPECT_EQ(oracle.violations, 0u);
}

TEST_P(WorkloadInvariants, NaiveBeatsNoSpeculation)
{
    // Figure 2: "for all programs, NAS/NAV results in higher
    // performance compared to NAS/NO".
    RunResult no = run(GetParam(), LsqModel::NAS, SpecPolicy::No);
    RunResult nav = run(GetParam(), LsqModel::NAS, SpecPolicy::Naive);
    EXPECT_GT(nav.ipc(), no.ipc() * 0.98) << GetParam();
}

TEST_P(WorkloadInvariants, SyncNearlyEliminatesMisspeculation)
{
    // Table 4: SYNC rates are orders of magnitude below NAV rates.
    RunResult nav = run(GetParam(), LsqModel::NAS, SpecPolicy::Naive);
    RunResult sync =
        run(GetParam(), LsqModel::NAS, SpecPolicy::SpecSync);
    EXPECT_LT(sync.misspecRate(), 0.002) << GetParam();
    if (nav.violations > 50) {
        EXPECT_LT(sync.misspecRate(), nav.misspecRate() / 5)
            << GetParam();
    }
}

TEST_P(WorkloadInvariants, SyncDoesNotRegressNaive)
{
    // Figure 6: SYNC recovers (most of) the miss-speculation penalty
    // and must not fall meaningfully below naive speculation.
    RunResult nav = run(GetParam(), LsqModel::NAS, SpecPolicy::Naive);
    RunResult sync =
        run(GetParam(), LsqModel::NAS, SpecPolicy::SpecSync);
    // A small allowance for false synchronization (the paper's "failing
    // to identify the appropriate store instance", Section 3.6).
    EXPECT_GE(sync.ipc(), nav.ipc() * 0.96) << GetParam();
}

TEST_P(WorkloadInvariants, AddressSchedulingAvoidsMisspeculation)
{
    // Section 3.4: under AS/NAV, miss-speculations are virtually
    // non-existent.
    // Data-dependent (gather) store addresses can still slip through,
    // so "virtually non-existent" rather than exactly zero.
    RunResult as_nav = run(GetParam(), LsqModel::AS, SpecPolicy::Naive);
    EXPECT_LT(as_nav.misspecRate(), 0.004) << GetParam();
}

TEST_P(WorkloadInvariants, SchedulerLatencyDegradesAsNav)
{
    // Figures 3/4: AS/NAV performance decays as scheduler latency
    // grows.
    RunResult lat0 = run(GetParam(), LsqModel::AS, SpecPolicy::Naive,
                         0);
    RunResult lat2 = run(GetParam(), LsqModel::AS, SpecPolicy::Naive,
                         2);
    EXPECT_GE(lat0.ipc(), lat2.ipc() * 0.995) << GetParam();
}

TEST_P(WorkloadInvariants, FalseDependencesExistUnderNoSpeculation)
{
    // Table 3: a substantial fraction of loads is delayed by false
    // dependences.
    RunResult no = run(GetParam(), LsqModel::NAS, SpecPolicy::No);
    EXPECT_GT(no.falseDepFraction(), 0.10) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadInvariants,
                         ::testing::ValuesIn(workloads::allNames()),
                         [](const auto &info) {
                             return "k" + info.param.substr(0, 3);
                         });

TEST(SuiteInvariants, SyncCapturesMostOfOracleGain)
{
    // Figure 6's headline: across the suite, SYNC lands close to the
    // oracle's average speedup over naive speculation.
    std::map<std::string, double> nav, sync, oracle;
    for (const auto &name : workloads::allNames()) {
        nav[name] = run(name, LsqModel::NAS, SpecPolicy::Naive).ipc();
        sync[name] =
            run(name, LsqModel::NAS, SpecPolicy::SpecSync).ipc();
        oracle[name] =
            run(name, LsqModel::NAS, SpecPolicy::Oracle).ipc();
    }
    double sync_gain =
        harness::meanSpeedup(sync, nav, workloads::allNames());
    double oracle_gain =
        harness::meanSpeedup(oracle, nav, workloads::allNames());
    EXPECT_GT(oracle_gain, 1.01);
    // SYNC must capture at least two thirds of the oracle's gain.
    EXPECT_GT(sync_gain - 1.0, (oracle_gain - 1.0) * 0.66);
}

TEST(SuiteInvariants, OracleGainGrowsWithWindowSize)
{
    // Figure 1: the value of load/store parallelism increases with the
    // instruction window.
    std::map<std::string, double> no64, or64, no128, or128;
    for (const auto &name : workloads::allNames()) {
        no64[name] =
            runner()
                .run(name, withPolicy(makeW64Config(), LsqModel::NAS,
                                      SpecPolicy::No))
                .ipc();
        or64[name] =
            runner()
                .run(name, withPolicy(makeW64Config(), LsqModel::NAS,
                                      SpecPolicy::Oracle))
                .ipc();
        no128[name] = run(name, LsqModel::NAS, SpecPolicy::No).ipc();
        or128[name] =
            run(name, LsqModel::NAS, SpecPolicy::Oracle).ipc();
    }
    double gain64 =
        harness::meanSpeedup(or64, no64, workloads::allNames());
    double gain128 =
        harness::meanSpeedup(or128, no128, workloads::allNames());
    EXPECT_GT(gain128, gain64);
}

TEST(SuiteInvariants, FpCodesSufferMoreFalseDependences)
{
    // Table 3's int/fp contrast.
    double int_fd = 0, fp_fd = 0;
    for (const auto &name : workloads::intNames())
        int_fd += run(name, LsqModel::NAS, SpecPolicy::No)
                      .falseDepFraction();
    for (const auto &name : workloads::fpNames())
        fp_fd += run(name, LsqModel::NAS, SpecPolicy::No)
                     .falseDepFraction();
    int_fd /= workloads::intNames().size();
    fp_fd /= workloads::fpNames().size();
    EXPECT_GT(fp_fd, int_fd);
}

} // anonymous namespace
} // namespace cwsim
