/**
 * @file
 * Tests for the ISA substrate: encode/decode round trips over every
 * opcode (parameterized), execution semantics, the program builder and
 * the functional interpreter.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/exec_fn.hh"
#include "isa/executor.hh"
#include "isa/opcodes.hh"
#include "isa/static_inst.hh"
#include "mem/functional_memory.hh"

namespace cwsim
{
namespace
{

// ---------------------------------------------------------------------
// Encode/decode property: every opcode round-trips through its binary
// encoding with representative operand values.
// ---------------------------------------------------------------------

class EncodeRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

StaticInst
representativeInst(Opcode op)
{
    const OpInfo &i = opInfo(op);
    StaticInst inst;
    inst.op = op;
    inst.rd = reg_invalid;
    inst.rs1 = reg_invalid;
    inst.rs2 = reg_invalid;
    inst.imm = 0;
    switch (i.format) {
      case InstFormat::R:
        inst.rs1 = i.rs1Fp ? fr(3) : ir(3);
        inst.rs2 = i.rs2Fp ? fr(7) : ir(7);
        if (i.writesRd)
            inst.rd = i.rdFp ? fr(12) : ir(12);
        break;
      case InstFormat::I:
        inst.rs1 = i.rs1Fp ? fr(4) : ir(4);
        if (i.writesRd)
            inst.rd = i.rdFp ? fr(9) : ir(9);
        inst.imm = -123;
        break;
      case InstFormat::S:
      case InstFormat::B:
        inst.rs1 = i.rs1Fp ? fr(5) : ir(5);
        inst.rs2 = i.rs2Fp ? fr(6) : ir(6);
        inst.imm = 456;
        break;
      case InstFormat::Jf:
        inst.imm = -100000;
        if (i.isCall)
            inst.rd = reg_ra;
        break;
      case InstFormat::JRf:
        inst.rs1 = ir(31);
        if (i.isCall)
            inst.rd = ir(30);
        break;
      case InstFormat::N:
        break;
    }
    return inst;
}

TEST_P(EncodeRoundTrip, RoundTrips)
{
    Opcode op = static_cast<Opcode>(GetParam());
    StaticInst inst = representativeInst(op);
    uint32_t word = inst.encode();
    StaticInst back = StaticInst::decode(word);
    EXPECT_EQ(inst, back) << "opcode " << opName(op) << " decoded as "
                          << back.disassemble();
}

TEST_P(EncodeRoundTrip, DisassemblesWithMnemonic)
{
    Opcode op = static_cast<Opcode>(GetParam());
    StaticInst inst = representativeInst(op);
    std::string text = inst.disassemble();
    EXPECT_NE(text.find(opName(op)), std::string::npos) << text;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::Range(0u, num_opcodes),
                         [](const auto &info) {
                             std::string n = opName(
                                 static_cast<Opcode>(info.param));
                             for (char &c : n) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return n;
                         });

// ---------------------------------------------------------------------
// Execution semantics.
// ---------------------------------------------------------------------

TEST(ExecFn, IntegerAluBasics)
{
    StaticInst add(Opcode::ADD, ir(1), ir(2), ir(3), 0);
    EXPECT_EQ(exec::compute(add, 5, 7, 0), 12u);

    StaticInst sub(Opcode::SUB, ir(1), ir(2), ir(3), 0);
    EXPECT_EQ(static_cast<int64_t>(exec::compute(sub, 3, 5, 0)), -2);

    StaticInst slt(Opcode::SLT, ir(1), ir(2), ir(3), 0);
    EXPECT_EQ(exec::compute(slt, static_cast<uint64_t>(-1), 0, 0), 1u);

    StaticInst sltu(Opcode::SLTU, ir(1), ir(2), ir(3), 0);
    EXPECT_EQ(exec::compute(sltu, static_cast<uint64_t>(-1), 0, 0), 0u);
}

TEST(ExecFn, Wraparound32)
{
    StaticInst add(Opcode::ADD, ir(1), ir(2), ir(3), 0);
    uint64_t r = exec::compute(add, 0x7fffffff, 1, 0);
    // Canonical form: sign-extended 32-bit value.
    EXPECT_EQ(static_cast<int64_t>(r), INT64_C(-2147483648));
}

TEST(ExecFn, ShiftsMaskAmount)
{
    StaticInst sll(Opcode::SLL, ir(1), ir(2), ir(3), 0);
    EXPECT_EQ(exec::compute(sll, 1, 33, 0), 2u); // 33 & 31 == 1

    StaticInst srai(Opcode::SRAI, ir(1), ir(2), reg_invalid, 4);
    uint64_t r = exec::compute(srai, static_cast<uint64_t>(-32), 0, 0);
    EXPECT_EQ(static_cast<int64_t>(r), -2);
}

TEST(ExecFn, DivisionEdgeCases)
{
    StaticInst div(Opcode::DIV, ir(1), ir(2), ir(3), 0);
    EXPECT_EQ(exec::compute(div, 10, 0, 0), 0u); // div-by-zero -> 0
    uint64_t min = exec::canonInt(0x80000000u);
    EXPECT_EQ(exec::compute(div, min, static_cast<uint64_t>(-1), 0), min);

    StaticInst rem(Opcode::REM, ir(1), ir(2), ir(3), 0);
    EXPECT_EQ(exec::compute(rem, 10, 3, 0), 1u);
    EXPECT_EQ(exec::compute(rem, 10, 0, 0), 0u);
}

TEST(ExecFn, FloatingPoint)
{
    StaticInst fadd(Opcode::FADD_D, fr(1), fr(2), fr(3), 0);
    uint64_t r = exec::compute(fadd, exec::fromDouble(1.5),
                               exec::fromDouble(2.25), 0);
    EXPECT_DOUBLE_EQ(exec::asDouble(r), 3.75);

    StaticInst fdiv(Opcode::FDIV_D, fr(1), fr(2), fr(3), 0);
    r = exec::compute(fdiv, exec::fromDouble(1.0), exec::fromDouble(0.0),
                      0);
    EXPECT_DOUBLE_EQ(exec::asDouble(r), 0.0); // no traps

    StaticInst fclt(Opcode::FCLT, ir(1), fr(2), fr(3), 0);
    EXPECT_EQ(exec::compute(fclt, exec::fromDouble(1.0),
                            exec::fromDouble(2.0), 0), 1u);

    StaticInst cvt(Opcode::CVT_W_D, ir(1), fr(2), reg_invalid, 0);
    EXPECT_EQ(exec::compute(cvt, exec::fromDouble(-3.7), 0, 0),
              exec::canonInt(static_cast<uint32_t>(-3)));
}

TEST(ExecFn, Branches)
{
    EXPECT_TRUE(exec::branchTaken(Opcode::BEQ, 5, 5));
    EXPECT_FALSE(exec::branchTaken(Opcode::BEQ, 5, 6));
    EXPECT_TRUE(exec::branchTaken(Opcode::BNE, 5, 6));
    EXPECT_TRUE(
        exec::branchTaken(Opcode::BLT, static_cast<uint64_t>(-1), 0));
    EXPECT_TRUE(exec::branchTaken(Opcode::BGE, 3, 3));

    StaticInst beq(Opcode::BEQ, reg_invalid, ir(1), ir(2), -5);
    EXPECT_EQ(branchTarget(beq, 0x1010), 0x1000u);
}

TEST(ExecFn, EffectiveAddressWraps32)
{
    StaticInst lw(Opcode::LW, ir(1), ir(2), reg_invalid, -8);
    EXPECT_EQ(exec::effectiveAddr(lw, 0x1000), 0xff8u);
    // 32-bit wraparound.
    EXPECT_EQ(exec::effectiveAddr(lw, 4), 0xfffffffcu);
}

TEST(ExecFn, LoadExtension)
{
    StaticInst lb(Opcode::LB, ir(1), ir(2), reg_invalid, 0);
    EXPECT_EQ(static_cast<int64_t>(exec::loadExtend(lb, 0x80)), -128);
    StaticInst lbu(Opcode::LBU, ir(1), ir(2), reg_invalid, 0);
    EXPECT_EQ(exec::loadExtend(lbu, 0x80), 128u);
    StaticInst lw(Opcode::LW, ir(1), ir(2), reg_invalid, 0);
    EXPECT_EQ(static_cast<int64_t>(exec::loadExtend(lw, 0xffffffff)), -1);
}

// ---------------------------------------------------------------------
// Builder + executor integration.
// ---------------------------------------------------------------------

TEST(BuilderTest, SumLoop)
{
    // sum = 0; for (i = 10; i != 0; --i) sum += i;  => 55
    ProgramBuilder b;
    Addr result = b.dataAlloc(4);
    b.addi(ir(1), reg_zero, 10);  // i = 10
    b.addi(ir(2), reg_zero, 0);   // sum = 0
    auto loop = b.hereLabel();
    b.add(ir(2), ir(2), ir(1));
    b.addi(ir(1), ir(1), -1);
    b.bne(ir(1), reg_zero, loop);
    b.la(ir(3), result);
    b.sw(ir(2), ir(3), 0);
    b.halt();

    Program prog = b.build();
    FunctionalMemory mem;
    prog.loadInto(mem);
    Executor ex(mem, prog.entry());
    uint64_t n = ex.run();
    EXPECT_TRUE(ex.halted());
    EXPECT_EQ(mem.read(result, 4), 55u);
    // 2 setup + 3*10 loop + la(1 or 2) + sw + halt
    EXPECT_GE(n, 35u);
}

TEST(BuilderTest, BackwardAndForwardLabels)
{
    ProgramBuilder b;
    auto skip = b.newLabel();
    b.addi(ir(1), reg_zero, 1);
    b.j(skip);
    b.addi(ir(1), reg_zero, 99); // skipped
    b.bind(skip);
    b.addi(ir(2), ir(1), 1);
    b.halt();

    Program prog = b.build();
    FunctionalMemory mem;
    prog.loadInto(mem);
    Executor ex(mem, prog.entry());
    ex.run();
    EXPECT_EQ(ex.state().readReg(ir(1)), 1u);
    EXPECT_EQ(ex.state().readReg(ir(2)), 2u);
}

TEST(BuilderTest, CallAndReturn)
{
    ProgramBuilder b;
    auto func = b.newLabel();
    b.addi(ir(4), reg_zero, 5);
    b.jal(func);
    b.addi(ir(6), ir(5), 100); // after return: r6 = r5 + 100
    b.halt();
    b.bind(func);
    b.add(ir(5), ir(4), ir(4)); // r5 = 2*r4
    b.jr(reg_ra);

    Program prog = b.build();
    FunctionalMemory mem;
    prog.loadInto(mem);
    Executor ex(mem, prog.entry());
    ex.run(100);
    EXPECT_TRUE(ex.halted());
    EXPECT_EQ(ex.state().readReg(ir(5)), 10u);
    EXPECT_EQ(ex.state().readReg(ir(6)), 110u);
}

TEST(BuilderTest, Li32LargeConstants)
{
    ProgramBuilder b;
    b.li32(ir(1), 0xdeadbeef);
    b.li32(ir(2), 0x12340000);
    b.li32(ir(3), 42);
    b.li32(ir(4), 0xffff8000); // == -32768, fits addi
    b.halt();
    Program prog = b.build();
    FunctionalMemory mem;
    prog.loadInto(mem);
    Executor ex(mem, prog.entry());
    ex.run();
    EXPECT_EQ(static_cast<uint32_t>(ex.state().readReg(ir(1))),
              0xdeadbeefu);
    EXPECT_EQ(static_cast<uint32_t>(ex.state().readReg(ir(2))),
              0x12340000u);
    EXPECT_EQ(ex.state().readReg(ir(3)), 42u);
    EXPECT_EQ(static_cast<uint32_t>(ex.state().readReg(ir(4))),
              0xffff8000u);
}

TEST(BuilderTest, DataSegmentInitialization)
{
    ProgramBuilder b;
    Addr arr = b.dataAlloc(16, 8);
    b.dataW32(arr, 0x11111111);
    b.dataW32(arr + 4, 0x22222222);
    b.dataW64(arr + 8, 0x3333333344444444ull);
    Addr darr = b.dataAlloc(8, 8);
    b.dataF64(darr, 2.5);
    b.halt();
    Program prog = b.build();
    FunctionalMemory mem;
    prog.loadInto(mem);
    EXPECT_EQ(mem.read(arr, 4), 0x11111111u);
    EXPECT_EQ(mem.read(arr + 4, 4), 0x22222222u);
    EXPECT_EQ(mem.read(arr + 8, 8), 0x3333333344444444ull);
    EXPECT_DOUBLE_EQ(exec::asDouble(mem.read(darr, 8)), 2.5);
}

TEST(ExecutorTest, StepInfoForMemoryOps)
{
    ProgramBuilder b;
    Addr slot = b.dataAlloc(8);
    b.la(ir(1), slot);
    b.addi(ir(2), reg_zero, 77);
    b.sw(ir(2), ir(1), 0);
    b.lw(ir(3), ir(1), 0);
    b.halt();
    Program prog = b.build();
    FunctionalMemory mem;
    prog.loadInto(mem);
    Executor ex(mem, prog.entry());

    StepInfo info;
    do {
        info = ex.step();
    } while (!info.isStore);
    EXPECT_EQ(info.memAddr, slot);
    EXPECT_EQ(info.memSize, 4u);
    EXPECT_EQ(info.memValue, 77u);

    info = ex.step();
    EXPECT_TRUE(info.isLoad);
    EXPECT_EQ(info.memAddr, slot);
    EXPECT_EQ(info.memValue, 77u);
}

TEST(ExecutorTest, FpRoundTripThroughMemory)
{
    ProgramBuilder b;
    Addr slot = b.dataAlloc(8);
    b.dataF64(slot, 1.25);
    b.la(ir(1), slot);
    b.ld_f(fr(0), ir(1), 0);
    b.ld_f(fr(1), ir(1), 0);
    b.fadd_d(fr(2), fr(0), fr(1));
    b.sd_f(fr(2), ir(1), 0);
    b.halt();
    Program prog = b.build();
    FunctionalMemory mem;
    prog.loadInto(mem);
    Executor ex(mem, prog.entry());
    ex.run();
    EXPECT_DOUBLE_EQ(exec::asDouble(mem.read(slot, 8)), 2.5);
}

TEST(ExecutorTest, R0IsAlwaysZero)
{
    ProgramBuilder b;
    b.addi(reg_zero, reg_zero, 55);
    b.mv(ir(1), reg_zero);
    b.halt();
    Program prog = b.build();
    FunctionalMemory mem;
    prog.loadInto(mem);
    Executor ex(mem, prog.entry());
    ex.run();
    EXPECT_EQ(ex.state().readReg(ir(1)), 0u);
    EXPECT_EQ(ex.state().readReg(reg_zero), 0u);
}

TEST(ExecutorTest, RunRespectsInstructionBudget)
{
    ProgramBuilder b;
    auto forever = b.hereLabel();
    b.addi(ir(1), ir(1), 1);
    b.j(forever);
    Program prog = b.build();
    FunctionalMemory mem;
    prog.loadInto(mem);
    Executor ex(mem, prog.entry());
    uint64_t n = ex.run(1000);
    EXPECT_EQ(n, 1000u);
    EXPECT_FALSE(ex.halted());
    EXPECT_EQ(ex.instCount(), 1000u);
}

TEST(DecodeCacheTest, CachesByPc)
{
    ProgramBuilder b;
    b.addi(ir(1), reg_zero, 1);
    b.halt();
    Program prog = b.build();
    FunctionalMemory mem;
    prog.loadInto(mem);
    DecodeCache dc(mem);
    const StaticInst &i1 = dc.lookup(prog.entry());
    const StaticInst &i2 = dc.lookup(prog.entry());
    EXPECT_EQ(&i1, &i2);
    EXPECT_EQ(dc.size(), 1u);
    EXPECT_EQ(i1.op, Opcode::ADDI);
}

} // anonymous namespace
} // namespace cwsim
