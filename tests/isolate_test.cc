/**
 * @file
 * Tests for the --isolate sweep executor: a fault storm of injected
 * host crashes, hangs, and allocation storms across the workload suite
 * must be contained and classified while every surviving run stays
 * bit-identical to a clean serial sweep. Lives apart from sweep_test
 * because these tests fork(), which the tsan test shard must not.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "harness/harness.hh"
#include "mdp/dep_profile.hh"
#include "obs/depprof.hh"
#include "sweep/report.hh"
#include "sweep/run_cache.hh"
#include "sweep/sweep.hh"
#include "workloads/workload.hh"

// RLIMIT_AS-based OOM containment cannot run under AddressSanitizer:
// ASan reserves terabytes of shadow address space up front, so any cap
// small enough to stop the allocation storm kills the child at startup
// instead.
#if defined(__SANITIZE_ADDRESS__)
#define CWSIM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CWSIM_ASAN 1
#endif
#endif

namespace cwsim
{
namespace
{

using harness::FailKind;
using harness::RunResult;
using harness::Runner;
using sweep::SweepEngine;
using sweep::SweepOptions;
using sweep::SweepPlan;

struct ScratchDir
{
    explicit ScratchDir(const std::string &tag)
        : path(tag + "." + std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~ScratchDir() { std::filesystem::remove_all(path); }

    std::string path;
};

SimConfig
baseConfig()
{
    return withPolicy(makeW128Config(), LsqModel::NAS,
                      SpecPolicy::Naive);
}

void
expectSameSimResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.failKind, b.failKind);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.committedLoads, b.committedLoads);
    EXPECT_EQ(a.committedStores, b.committedStores);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.replays, b.replays);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.squashedInsts, b.squashedInsts);
    EXPECT_EQ(a.falseDepLoads, b.falseDepLoads);
    EXPECT_EQ(a.falseDepLatency, b.falseDepLatency);
    EXPECT_EQ(a.commitWidth, b.commitWidth);
    for (size_t i = 0; i < obs::num_cpi_causes; ++i)
        EXPECT_EQ(a.cpiSlots[i], b.cpiSlots[i]);
}

/**
 * The flagship containment scenario: every workload runs clean except
 * three singled out for a host crash, a hang, and (outside ASan) an
 * allocation storm, each firing on the first simulated cycle (rate 1).
 */
TEST(IsolateContainment, FaultStormAcrossTheSuite)
{
    const std::vector<std::string> names = workloads::allNames();
    ASSERT_GE(names.size(), 18u);

    const std::string crasher = names[2];
    const std::string hanger = names[7];
#ifndef CWSIM_ASAN
    const std::string alloc = names[11];
#else
    const std::string alloc; // OOM containment untestable under ASan
#endif

    SweepPlan plan;
    for (const std::string &name : names) {
        SimConfig cfg = baseConfig();
        if (name == crasher)
            cfg.check.faults.hostCrashRate = 1.0;
        else if (name == hanger)
            cfg.check.faults.hostHangRate = 1.0;
        else if (!alloc.empty() && name == alloc)
            cfg.check.faults.hostAllocRate = 1.0;
        plan.add(name, cfg);
    }

    // Clean serial reference: same plan, no faults, no isolation.
    SweepPlan cleanPlan;
    for (const std::string &name : names)
        cleanPlan.add(name, baseConfig());
    Runner cleanRunner(3000);
    SweepOptions cleanOpts;
    cleanOpts.jobs = 1;
    cleanOpts.useCache = false;
    auto cleanResults =
        SweepEngine(cleanRunner, cleanOpts).run(cleanPlan);

    Runner runner(3000);
    SweepOptions opts;
    opts.jobs = 4;
    opts.useCache = false;
    opts.isolate = true;
    opts.timeoutSec = 2.0;
    opts.memLimitMb = 2048;
    opts.retries = 0; // injected faults are deterministic; don't retry
    auto results = SweepEngine(runner, opts).run(plan);

    ASSERT_EQ(results.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        SCOPED_TRACE(names[i]);
        const RunResult &r = results[i];
        if (names[i] == crasher) {
            EXPECT_FALSE(r.ok);
            EXPECT_EQ(r.failKind, FailKind::Crash);
            EXPECT_EQ(r.failDetail, "SIGABRT");
            EXPECT_TRUE(r.injectedHostFault);
        } else if (names[i] == hanger) {
            EXPECT_FALSE(r.ok);
            EXPECT_EQ(r.failKind, FailKind::Timeout);
            EXPECT_TRUE(r.injectedHostFault);
        } else if (!alloc.empty() && names[i] == alloc) {
            EXPECT_FALSE(r.ok);
            EXPECT_EQ(r.failKind, FailKind::Oom);
            EXPECT_TRUE(r.injectedHostFault);
        } else {
            // Survivor: bit-identical to the clean serial sweep.
            EXPECT_TRUE(r.ok);
            EXPECT_EQ(r.failKind, FailKind::None);
            expectSameSimResult(cleanResults[i], r);
        }
    }

    // Every failure was an armed fault doing its job: the FAILED RUNS
    // table lists them, but the campaign still exits 0.
    size_t faulted = alloc.empty() ? 2u : 3u;
    EXPECT_EQ(runner.failures().size(), faulted);
    EXPECT_EQ(sweep::reportFailures(runner), 0u);
}

TEST(IsolateContainment, SimErrorsPassThroughUnchanged)
{
    // An in-process SimError must classify as sim_error with the exact
    // same error text under isolation as without it — and it counts as
    // a real campaign failure (not an injected, contained one).
    SimConfig doomed = baseConfig();
    doomed.maxCycles = 50;

    SweepPlan plan;
    plan.add("129.compress", doomed);

    Runner direct(3000);
    RunResult expected = direct.run("129.compress", doomed);
    ASSERT_FALSE(expected.ok);
    ASSERT_EQ(expected.failKind, FailKind::SimError);

    Runner runner(3000);
    SweepOptions opts;
    opts.jobs = 1;
    opts.useCache = false;
    opts.isolate = true;
    opts.timeoutSec = 30.0;
    auto results = SweepEngine(runner, opts).run(plan);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].failKind, FailKind::SimError);
    EXPECT_EQ(results[0].error, expected.error);
    EXPECT_EQ(results[0].diagnostic, expected.diagnostic);
    EXPECT_FALSE(results[0].injectedHostFault);
    EXPECT_EQ(sweep::reportFailures(runner), 1u);
}

TEST(IsolateContainment, HostFailuresRetryUpToBudget)
{
    // A deterministic injected crash exhausts the retry budget; the
    // final error text records how many attempts were burned.
    SimConfig cfg = baseConfig();
    cfg.check.faults.hostCrashRate = 1.0;

    SweepPlan plan;
    plan.add("130.li", cfg);

    Runner runner(3000);
    SweepOptions opts;
    opts.jobs = 1;
    opts.useCache = false;
    opts.isolate = true;
    opts.retries = 2;
    auto results = SweepEngine(runner, opts).run(plan);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].failKind, FailKind::Crash);
    EXPECT_NE(results[0].error.find("after 3 attempt(s)"),
              std::string::npos)
        << results[0].error;
}

TEST(IsolateContainment, IsolatedCleanSweepMatchesDirectSweep)
{
    // No faults armed: isolation must be invisible in the results.
    SweepPlan plan;
    for (const char *name : {"129.compress", "102.swim", "099.go"})
        plan.add(name, baseConfig());

    Runner directRunner(3000);
    SweepOptions directOpts;
    directOpts.jobs = 1;
    directOpts.useCache = false;
    auto direct = SweepEngine(directRunner, directOpts).run(plan);

    Runner isoRunner(3000);
    SweepOptions isoOpts;
    isoOpts.jobs = 2;
    isoOpts.useCache = false;
    isoOpts.isolate = true;
    isoOpts.timeoutSec = 60.0;
    auto isolated = SweepEngine(isoRunner, isoOpts).run(plan);

    ASSERT_EQ(direct.size(), isolated.size());
    for (size_t i = 0; i < direct.size(); ++i) {
        SCOPED_TRACE(plan.jobs()[i].workload);
        expectSameSimResult(direct[i], isolated[i]);
    }
    EXPECT_TRUE(isoRunner.failures().empty());
}

TEST(IsolateContainment, DepProfilesSurviveIsolationBitIdentical)
{
    // With profiling on, forked workers inherit the profiling state,
    // write their blocks into the shared file, and ship the dep_*
    // summary back over the result pipe — all of it bit-identical to
    // an inline sweep, across the whole suite under both recovery
    // models.
    SweepPlan plan;
    for (const auto &name : workloads::allNames()) {
        SimConfig squash = baseConfig();
        plan.add(name, squash);
        SimConfig selective = squash;
        selective.mdp.recovery = RecoveryModel::Selective;
        plan.add(name, selective);
    }

    ScratchDir dir("isolate_depprof_test");
    auto guard = [](const std::string &path) {
        obs::DepProfManager::instance().resetForTesting();
        obs::DepProfManager::instance().enable(path);
    };

    guard(dir.path + "/direct.depprof.jsonl");
    Runner directRunner(3000);
    SweepOptions directOpts;
    directOpts.jobs = 1;
    directOpts.useCache = false;
    auto direct = SweepEngine(directRunner, directOpts).run(plan);

    guard(dir.path + "/isolated.depprof.jsonl");
    Runner isoRunner(3000);
    SweepOptions isoOpts;
    isoOpts.jobs = 4;
    isoOpts.useCache = false;
    isoOpts.isolate = true;
    isoOpts.timeoutSec = 60.0;
    auto isolated = SweepEngine(isoRunner, isoOpts).run(plan);
    obs::DepProfManager::instance().resetForTesting();

    ASSERT_EQ(direct.size(), plan.size());
    ASSERT_EQ(isolated.size(), plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        SCOPED_TRACE(plan.jobs()[i].workload);
        expectSameSimResult(direct[i], isolated[i]);
        EXPECT_TRUE(isolated[i].depProfiled);
        EXPECT_EQ(direct[i].depLoads, isolated[i].depLoads);
        EXPECT_EQ(direct[i].depStores, isolated[i].depStores);
        EXPECT_EQ(direct[i].depEdges, isolated[i].depEdges);
        EXPECT_EQ(direct[i].depHotEdges, isolated[i].depHotEdges);
    }
    EXPECT_TRUE(isoRunner.failures().empty());

    // Both profile files validate whole: concurrent forked appenders
    // must land complete blocks, never interleaved lines.
    mdp::DepProfileFile df, isof;
    std::string err;
    ASSERT_TRUE(df.load(dir.path + "/direct.depprof.jsonl", &err))
        << err;
    ASSERT_TRUE(isof.load(dir.path + "/isolated.depprof.jsonl", &err))
        << err;
    EXPECT_TRUE(df.valid());
    EXPECT_TRUE(isof.valid());
    EXPECT_EQ(df.runs().size(), plan.size());
    EXPECT_EQ(isof.runs().size(), plan.size());
}

TEST(IsolateContainment, IsolatedResultsLandInTheRunCache)
{
    // Results produced by forked children must persist like any other:
    // a second, non-isolated sweep is served entirely from the cache.
    ScratchDir dir("isolate_cache_test");
    SweepPlan plan;
    plan.add("124.m88ksim", baseConfig());

    SweepOptions opts;
    opts.jobs = 1;
    opts.cacheDir = dir.path;
    opts.isolate = true;
    Runner cold(3000);
    SweepEngine coldEngine(cold, opts);
    auto coldResults = coldEngine.run(plan);
    ASSERT_TRUE(coldResults[0].ok);
    EXPECT_EQ(coldEngine.timingRuns(), 1u);

    opts.isolate = false;
    Runner warm(3000);
    SweepEngine warmEngine(warm, opts);
    auto warmResults = warmEngine.run(plan);
    EXPECT_EQ(warmEngine.timingRuns(), 0u);
    EXPECT_EQ(warmEngine.cacheHits(), 1u);
    expectSameSimResult(coldResults[0], warmResults[0]);
}

TEST(RunCacheConcurrency, TwoProcessesAppendWithoutCorruption)
{
    // A parent and a forked child hammer the same cache file through
    // independent RunCache instances (separate open file descriptions,
    // so only O_APPEND atomicity and flock protect the bytes). Every
    // record from both writers must survive, parseable, no torn lines.
    ScratchDir dir("isolate_flock_test");
    constexpr uint64_t per_side = 50;

    auto hammer = [&](uint64_t fpBase) {
        sweep::RunCache cache(dir.path);
        RunResult r;
        r.workload = "129.compress";
        r.config = "NAS/NAV W128";
        // A fat diagnostic makes each record big enough that a torn
        // interleave could not be mistaken for luck.
        r.diagnostic = std::string(2048, 'x');
        for (uint64_t i = 0; i < per_side; ++i) {
            r.cycles = fpBase + i;
            cache.append(fpBase + i, 3000, r);
        }
    };

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        hammer(1'000'000);
        _exit(0);
    }
    hammer(2'000'000);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    sweep::CacheFsckReport rep = sweep::fsckRunCache(dir.path);
    EXPECT_TRUE(rep.clean());
    EXPECT_FALSE(rep.tornTail);
    EXPECT_EQ(rep.valid, 2 * per_side);
    EXPECT_EQ(rep.duplicates, 0u);

    sweep::RunCache reload(dir.path);
    EXPECT_EQ(reload.size(), 2 * per_side);
    RunResult out;
    ASSERT_TRUE(reload.lookup(1'000'000 + 7, out));
    EXPECT_EQ(out.cycles, 1'000'000u + 7);
    ASSERT_TRUE(reload.lookup(2'000'000 + 49, out));
    EXPECT_EQ(out.cycles, 2'000'000u + 49);
}

TEST(ReportFailureTally, InjectedFaultsAreNotCampaignFailures)
{
    Runner runner(3000);

    RunResult injected;
    injected.workload = "130.li";
    injected.config = "NAS/NAV W128";
    injected.ok = false;
    injected.failKind = FailKind::Crash;
    injected.failDetail = "SIGABRT";
    injected.injectedHostFault = true;
    injected.error = "isolated run died: crash(SIGABRT)";
    runner.recordFailure(injected);
    EXPECT_EQ(sweep::reportFailures(runner), 0u);

    RunResult real = injected;
    real.workload = "126.gcc";
    real.injectedHostFault = false;
    runner.recordFailure(real);
    EXPECT_EQ(sweep::reportFailures(runner), 1u);
}

} // anonymous namespace
} // namespace cwsim
