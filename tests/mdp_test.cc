/**
 * @file
 * Direct unit tests for the memory dependence prediction structures:
 * the MDPT (confidence counters, synonym pairing, set-associative
 * replacement, periodic reset) and the oracle pre-pass.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "mdp/mdp_table.hh"
#include "mdp/oracle.hh"
#include "sim/config.hh"

namespace cwsim
{
namespace
{

MdpConfig
smallMdpt()
{
    MdpConfig cfg;
    cfg.mdptEntries = 16;
    cfg.mdptAssoc = 2;
    return cfg;
}

// ---------------------------------------------------------------------
// MdpTable: confidence behaviour (SEL / STORE policies).
// ---------------------------------------------------------------------

TEST(MdpTableTest, PredictsAfterThreshold)
{
    // Paper: "It takes 3 miss-speculations on a specific load or store
    // before the existence of a dependence is predicted."
    MdpTable table{MdpConfig{}};
    const Addr pc = 0x1000;
    EXPECT_FALSE(table.predictsDependence(pc));
    EXPECT_FALSE(table.recordMissSpeculation(pc)); // 1
    EXPECT_FALSE(table.predictsDependence(pc));
    EXPECT_FALSE(table.recordMissSpeculation(pc)); // 2
    EXPECT_FALSE(table.predictsDependence(pc));
    EXPECT_TRUE(table.recordMissSpeculation(pc));  // 3
    EXPECT_TRUE(table.predictsDependence(pc));
}

TEST(MdpTableTest, CounterSaturates)
{
    MdpTable table{MdpConfig{}};
    for (int i = 0; i < 10; ++i)
        table.recordMissSpeculation(0x2000);
    EXPECT_TRUE(table.predictsDependence(0x2000));
}

TEST(MdpTableTest, DistinctPcsIndependent)
{
    MdpTable table{MdpConfig{}};
    for (int i = 0; i < 3; ++i)
        table.recordMissSpeculation(0x3000);
    EXPECT_TRUE(table.predictsDependence(0x3000));
    EXPECT_FALSE(table.predictsDependence(0x3004));
}

TEST(MdpTableTest, ResetClearsEverything)
{
    MdpTable table{MdpConfig{}};
    for (int i = 0; i < 3; ++i)
        table.recordMissSpeculation(0x4000);
    Synonym syn = table.pair(0x5000, 0x6000);
    EXPECT_TRUE(table.predictsDependence(0x4000));
    EXPECT_EQ(table.synonymOf(0x5000), syn);

    table.reset();
    EXPECT_FALSE(table.predictsDependence(0x4000));
    EXPECT_EQ(table.synonymOf(0x5000), invalid_synonym);
    EXPECT_EQ(table.resets.value(), 1u);
}

// ---------------------------------------------------------------------
// MdpTable: synonym pairing (SYNC policy).
// ---------------------------------------------------------------------

TEST(MdpTableTest, PairAssignsSharedSynonym)
{
    MdpTable table{MdpConfig{}};
    Synonym syn = table.pair(0x1000, 0x2000);
    EXPECT_NE(syn, invalid_synonym);
    EXPECT_EQ(table.synonymOf(0x1000), syn);
    EXPECT_EQ(table.synonymOf(0x2000), syn);
}

TEST(MdpTableTest, ChainsMergeThroughSharedStore)
{
    // Two loads that both depend on one store end up in one chain (the
    // "level of indirection" of Section 3.6).
    MdpTable table{MdpConfig{}};
    Synonym a = table.pair(0x1000, 0x9000);
    Synonym b = table.pair(0x1004, 0x9000);
    EXPECT_EQ(a, b);
    EXPECT_EQ(table.synonymOf(0x1000), table.synonymOf(0x1004));
}

TEST(MdpTableTest, ChainsMergeThroughSharedLoad)
{
    MdpTable table{MdpConfig{}};
    Synonym a = table.pair(0x1000, 0x9000);
    Synonym b = table.pair(0x1000, 0x9008);
    EXPECT_EQ(a, b);
    EXPECT_EQ(table.synonymOf(0x9000), table.synonymOf(0x9008));
}

TEST(MdpTableTest, UnrelatedPairsGetDistinctSynonyms)
{
    MdpTable table{MdpConfig{}};
    Synonym a = table.pair(0x1000, 0x9000);
    Synonym b = table.pair(0x2000, 0xa000);
    EXPECT_NE(a, b);
}

TEST(MdpTableTest, PairSurvivesSameSetEviction)
{
    // A pairing whose load allocation evicts the store's entry (same
    // set, direct-mapped) must still hand the load the store's EXISTING
    // synonym. Reading the store's entry through a reference held
    // across the load's allocation instead sees the freshly reset
    // entry, loses the chain, and mints a new synonym every time.
    MdpConfig cfg;
    cfg.mdptEntries = 2;
    cfg.mdptAssoc = 1; // two direct-mapped sets
    MdpTable table{cfg};

    const Addr store_pc = 0x100; // set 0
    const Addr load_a = 0x104;   // set 1: no conflict
    const Addr load_b = 0x108;   // set 0: evicts the store

    Synonym first = table.pair(load_a, store_pc);
    ASSERT_NE(first, invalid_synonym);
    ASSERT_EQ(table.synonymOf(store_pc), first);

    Synonym second = table.pair(load_b, store_pc);
    EXPECT_EQ(second, first)
        << "the store's chain membership must survive the eviction";
    EXPECT_EQ(table.synonymOf(load_b), first);
}

TEST(MdpTableTest, LruReplacementWithinSet)
{
    // With 16 entries 2-way, PCs 4*(8k + s) map to set s.
    MdpTable table{smallMdpt()};
    Addr set0_a = 4 * (8 * 0 + 0);
    Addr set0_b = 4 * (8 * 1 + 0);
    Addr set0_c = 4 * (8 * 2 + 0);
    table.allocate(set0_a);
    table.allocate(set0_b);
    // Touch a to make b the LRU victim.
    EXPECT_NE(table.find(set0_a), nullptr);
    table.allocate(set0_c);
    EXPECT_NE(table.find(set0_a), nullptr);
    EXPECT_EQ(table.find(set0_b), nullptr); // evicted
    EXPECT_NE(table.find(set0_c), nullptr);
}

TEST(MdpTableTest, AllocationCountsTracked)
{
    MdpTable table{MdpConfig{}};
    table.allocate(0x1000);
    table.allocate(0x1000); // hit, no new allocation
    table.allocate(0x2000);
    EXPECT_EQ(table.allocations.value(), 2u);
}

// ---------------------------------------------------------------------
// Oracle pre-pass.
// ---------------------------------------------------------------------

TEST(OracleTest, RecordsStoreToLoadProducer)
{
    ProgramBuilder b;
    Addr slot = b.dataAlloc(4);
    b.la(ir(1), slot);            // idx 0..1 (la = 1-2 insts)
    b.addi(ir(2), reg_zero, 42);
    b.sw(ir(2), ir(1), 0);
    b.lw(ir(3), ir(1), 0);
    b.halt();
    PrepassResult pre = runPrepass(b.build());

    // Find the dynamic indices of the store and load.
    TraceIndex store_idx = invalid_trace_index;
    TraceIndex load_idx = invalid_trace_index;
    PrepassOptions opts;
    opts.recordTrace = true;
    PrepassResult traced = runPrepass(b.build(), opts);
    for (size_t i = 0; i < traced.trace.size(); ++i) {
        if (traced.trace[i].inst.isStore())
            store_idx = i;
        if (traced.trace[i].inst.isLoad())
            load_idx = i;
    }
    ASSERT_NE(store_idx, invalid_trace_index);
    ASSERT_NE(load_idx, invalid_trace_index);
    EXPECT_EQ(pre.deps.producerOf(load_idx), store_idx);
}

TEST(OracleTest, NoProducerForColdLoads)
{
    ProgramBuilder b;
    Addr slot = b.dataAlloc(4);
    b.dataW32(slot, 7);
    b.la(ir(1), slot);
    b.lw(ir(2), ir(1), 0); // reads initialized data, never stored
    b.halt();
    PrepassOptions opts;
    opts.recordTrace = true;
    PrepassResult pre = runPrepass(b.build(), opts);
    for (size_t i = 0; i < pre.trace.size(); ++i) {
        if (pre.trace[i].inst.isLoad())
            EXPECT_EQ(pre.deps.producerOf(i), invalid_trace_index);
    }
}

TEST(OracleTest, PartialOverlapDetected)
{
    // A byte store into the middle of a later word load.
    ProgramBuilder b;
    Addr slot = b.dataAlloc(8);
    b.la(ir(1), slot);
    b.addi(ir(2), reg_zero, 0x5a);
    b.sb(ir(2), ir(1), 2);
    b.lw(ir(3), ir(1), 0);
    b.halt();
    PrepassOptions opts;
    opts.recordTrace = true;
    PrepassResult pre = runPrepass(b.build(), opts);
    TraceIndex store_idx = invalid_trace_index;
    for (size_t i = 0; i < pre.trace.size(); ++i) {
        if (pre.trace[i].inst.isStore())
            store_idx = i;
        if (pre.trace[i].inst.isLoad())
            EXPECT_EQ(pre.deps.producerOf(i), store_idx);
    }
}

TEST(OracleTest, YoungestProducerWins)
{
    ProgramBuilder b;
    Addr slot = b.dataAlloc(4);
    b.la(ir(1), slot);
    b.addi(ir(2), reg_zero, 1);
    b.sw(ir(2), ir(1), 0);  // older store
    b.addi(ir(2), reg_zero, 2);
    b.sw(ir(2), ir(1), 0);  // younger store
    b.lw(ir(3), ir(1), 0);
    b.halt();
    PrepassOptions opts;
    opts.recordTrace = true;
    PrepassResult pre = runPrepass(b.build(), opts);
    TraceIndex last_store = invalid_trace_index;
    TraceIndex load_idx = invalid_trace_index;
    for (size_t i = 0; i < pre.trace.size(); ++i) {
        if (pre.trace[i].inst.isStore())
            last_store = i;
        if (pre.trace[i].inst.isLoad())
            load_idx = i;
    }
    EXPECT_EQ(pre.deps.producerOf(load_idx), last_store);
}

TEST(OracleTest, CountsCharacteristics)
{
    ProgramBuilder b;
    Addr slot = b.dataAlloc(16);
    b.la(ir(1), slot);
    auto loop = b.newLabel();
    b.addi(ir(2), reg_zero, 10);
    b.bind(loop);
    b.sw(ir(2), ir(1), 0);
    b.lw(ir(3), ir(1), 0);
    b.addi(ir(2), ir(2), -1);
    b.bne(ir(2), reg_zero, loop);
    b.halt();
    PrepassResult pre = runPrepass(b.build());
    EXPECT_EQ(pre.loadCount, 10u);
    EXPECT_EQ(pre.storeCount, 10u);
    EXPECT_EQ(pre.branchCount, 10u);
    EXPECT_EQ(pre.takenBranches, 9u);
    EXPECT_TRUE(pre.halted);
}

TEST(OracleTest, MaxInstsStopsEarly)
{
    ProgramBuilder b;
    auto forever = b.hereLabel();
    b.addi(ir(1), ir(1), 1);
    b.j(forever);
    PrepassOptions opts;
    opts.maxInsts = 500;
    PrepassResult pre = runPrepass(b.build(), opts);
    EXPECT_EQ(pre.instCount, 500u);
    EXPECT_FALSE(pre.halted);
}

TEST(OracleTest, TraceMatchesInstCount)
{
    ProgramBuilder b;
    b.addi(ir(1), reg_zero, 5);
    auto loop = b.hereLabel();
    b.addi(ir(1), ir(1), -1);
    b.bne(ir(1), reg_zero, loop);
    b.halt();
    PrepassOptions opts;
    opts.recordTrace = true;
    PrepassResult pre = runPrepass(b.build(), opts);
    EXPECT_EQ(pre.trace.size(), pre.instCount);
    // Trace entries carry the PCs in execution order.
    EXPECT_EQ(pre.trace[0].pc, b.build().entry());
}

} // anonymous namespace
} // namespace cwsim
