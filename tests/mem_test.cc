/**
 * @file
 * Tests for the memory substrate: functional memory, the banked timing
 * caches with MSHRs, and the full hierarchy's Table 2 latencies.
 */

#include <gtest/gtest.h>

#include "mem/functional_memory.hh"
#include "mem/timing_cache.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace cwsim
{
namespace
{

TEST(FunctionalMemoryTest, ZeroInitialized)
{
    FunctionalMemory mem;
    EXPECT_EQ(mem.read(0x1234, 4), 0u);
    EXPECT_EQ(mem.read8(0xdead0000), 0u);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(FunctionalMemoryTest, ReadBackAllSizes)
{
    FunctionalMemory mem;
    mem.write(0x100, 1, 0xab);
    mem.write(0x104, 2, 0xbeef);
    mem.write(0x108, 4, 0xdeadbeef);
    mem.write(0x110, 8, 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x100, 1), 0xabu);
    EXPECT_EQ(mem.read(0x104, 2), 0xbeefu);
    EXPECT_EQ(mem.read(0x108, 4), 0xdeadbeefu);
    EXPECT_EQ(mem.read(0x110, 8), 0x1122334455667788ull);
}

TEST(FunctionalMemoryTest, LittleEndianByteOrder)
{
    FunctionalMemory mem;
    mem.write(0x200, 4, 0x04030201);
    EXPECT_EQ(mem.read8(0x200), 1u);
    EXPECT_EQ(mem.read8(0x201), 2u);
    EXPECT_EQ(mem.read8(0x202), 3u);
    EXPECT_EQ(mem.read8(0x203), 4u);
}

TEST(FunctionalMemoryTest, PageCrossingAccess)
{
    FunctionalMemory mem;
    Addr addr = FunctionalMemory::page_size - 2;
    mem.write(addr, 4, 0xcafebabe);
    EXPECT_EQ(mem.read(addr, 4), 0xcafebabeu);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(FunctionalMemoryTest, BulkBytes)
{
    FunctionalMemory mem;
    uint8_t out[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    mem.writeBytes(0x5000, out, 8);
    uint8_t in[8] = {};
    mem.readBytes(0x5000, in, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(in[i], out[i]);
}

// ---------------------------------------------------------------------
// Timing cache.
// ---------------------------------------------------------------------

struct CacheFixture : public ::testing::Test
{
    CacheFixture()
        : cfg{"test", 1024, 2, 2, 32, 2, 2, 1}, mem(memCfg, eq),
          cache(cfg, 0, eq, mem)
    {
    }

    /** Run one access to completion, returning its latency. */
    Cycles
    timedAccess(Addr addr, bool write = false)
    {
        Tick start = eq.curTick();
        bool done = false;
        bool accepted = cache.access(addr, 8, write, [&] { done = true; });
        EXPECT_TRUE(accepted);
        while (!done)
            eq.runUntil(eq.curTick() + 1);
        return eq.curTick() - start;
    }

    void advance(Cycles n) { eq.runUntil(eq.curTick() + n); }

    EventQueue eq;
    CacheConfig cfg;
    MemConfig memCfg;
    MainMemory mem;
    TimingCache cache;
};

TEST_F(CacheFixture, MissThenHitLatency)
{
    // Cold miss goes to "main memory": 34 + 2 * (32/16) = 38 cycles.
    Cycles miss_lat = timedAccess(0x1000);
    EXPECT_EQ(miss_lat, 38u);
    EXPECT_EQ(cache.misses.value(), 1u);

    advance(1);
    Cycles hit_lat = timedAccess(0x1000);
    EXPECT_EQ(hit_lat, cfg.hitLatency);
    EXPECT_EQ(cache.hits.value(), 1u);
}

TEST_F(CacheFixture, SameBlockHitsAfterFill)
{
    timedAccess(0x2000);
    advance(1);
    Cycles lat = timedAccess(0x2010); // same 32B block
    EXPECT_EQ(lat, cfg.hitLatency);
}

TEST_F(CacheFixture, LruEviction)
{
    // 1KB, 2-way, 32B blocks, 2 banks -> 8 sets per bank.
    // Blocks mapping to the same (bank, set) are 2*32*8 = 512B apart.
    timedAccess(0x0000);
    advance(1);
    timedAccess(0x0200);
    advance(1);
    EXPECT_TRUE(cache.isResident(0x0000));
    EXPECT_TRUE(cache.isResident(0x0200));
    timedAccess(0x0400); // evicts LRU = 0x0000
    advance(1);
    EXPECT_FALSE(cache.isResident(0x0000));
    EXPECT_TRUE(cache.isResident(0x0200));
    EXPECT_TRUE(cache.isResident(0x0400));
}

TEST_F(CacheFixture, MshrMergesSecondaryMiss)
{
    bool done_a = false, done_b = false;
    EXPECT_TRUE(cache.access(0x3000, 8, false, [&] { done_a = true; }));
    advance(1);
    // Second access to the same block merges (secondaryPerPrimary = 1).
    EXPECT_TRUE(cache.access(0x3008, 8, false, [&] { done_b = true; }));
    EXPECT_EQ(cache.mshrMerges.value(), 1u);
    advance(1);
    // Third access to the block exceeds the secondary limit.
    bool done_c = false;
    EXPECT_FALSE(cache.access(0x3010, 8, false, [&] { done_c = true; }));
    EXPECT_GE(cache.mshrRejects.value(), 1u);

    eq.drain();
    EXPECT_TRUE(done_a);
    EXPECT_TRUE(done_b);
    EXPECT_FALSE(done_c);
}

TEST_F(CacheFixture, PrimaryMshrLimitPerBank)
{
    // Bank 0 handles even-numbered blocks; limit is 2 primaries.
    bool sink = false;
    EXPECT_TRUE(cache.access(0x0000, 8, false, [&] { sink = true; }));
    advance(1);
    EXPECT_TRUE(cache.access(0x4000, 8, false, [&] { sink = true; }));
    advance(1);
    EXPECT_FALSE(cache.access(0x8000, 8, false, [&] { sink = true; }));
    eq.drain();
}

TEST_F(CacheFixture, BankConflictRejectsSameCycle)
{
    timedAccess(0x5000);
    timedAccess(0x5040); // same bank (both even blocks), different sets
    advance(1);
    // Both resident; two hits in the same cycle to one bank conflict.
    bool d1 = false, d2 = false;
    EXPECT_TRUE(cache.access(0x5000, 8, false, [&] { d1 = true; }));
    EXPECT_FALSE(cache.access(0x5040, 8, false, [&] { d2 = true; }));
    EXPECT_GE(cache.bankRejects.value(), 1u);
    // Different bank in the same cycle is fine.
    bool d3 = false;
    EXPECT_TRUE(cache.access(0x5020, 8, false, [&] { d3 = true; }));
    eq.drain();
    EXPECT_TRUE(d1);
    EXPECT_TRUE(d3);
}

TEST_F(CacheFixture, WarmProbeInstallsWithoutLatency)
{
    cache.probeWarm(0x9000, false);
    EXPECT_TRUE(cache.isResident(0x9000));
    Cycles lat = timedAccess(0x9000);
    EXPECT_EQ(lat, cfg.hitLatency);
}

// ---------------------------------------------------------------------
// Full hierarchy (Table 2 latencies).
// ---------------------------------------------------------------------

struct HierarchyFixture : public ::testing::Test
{
    HierarchyFixture() : sys(cfg, eq) {}

    Cycles
    timedData(Addr addr, bool write = false)
    {
        Tick start = eq.curTick();
        bool done = false;
        EXPECT_TRUE(sys.dataAccess(addr, 8, write, [&] { done = true; }));
        while (!done)
            eq.runUntil(eq.curTick() + 1);
        return eq.curTick() - start;
    }

    void advance(Cycles n) { eq.runUntil(eq.curTick() + n); }

    EventQueue eq;
    MemConfig cfg;
    MemorySystem sys;
};

TEST_F(HierarchyFixture, ColdMissLatencyIs50Cycles)
{
    // L1 miss -> L2 miss -> memory: the L2 fills its 128B block in
    // 34 + 8 * 2 = 50 cycles, then forwards to the L1 target.
    Cycles lat = timedData(0x10000);
    EXPECT_EQ(lat, 50u);
}

TEST_F(HierarchyFixture, L2HitLatencyIs10Cycles)
{
    timedData(0x20000);
    advance(1);
    // A different L1 block inside the same (now L2-resident) 128B block.
    Cycles lat = timedData(0x20040);
    EXPECT_EQ(lat, 10u);
}

TEST_F(HierarchyFixture, L1HitLatencyIs2Cycles)
{
    timedData(0x30000);
    advance(1);
    Cycles lat = timedData(0x30000);
    EXPECT_EQ(lat, 2u);
}

TEST_F(HierarchyFixture, InstAndDataPathsAreIndependent)
{
    Tick start = eq.curTick();
    bool i_done = false, d_done = false;
    EXPECT_TRUE(sys.instAccess(0x40000, [&] { i_done = true; }));
    EXPECT_TRUE(sys.dataAccess(0x40000, 8, false, [&] { d_done = true; }));
    eq.drain();
    EXPECT_TRUE(i_done);
    EXPECT_TRUE(d_done);
    EXPECT_LE(eq.curTick() - start, 60u);
}

TEST_F(HierarchyFixture, WarmingMakesTimingHitsImmediately)
{
    sys.warmData(0x50000, false);
    Cycles lat = timedData(0x50000);
    EXPECT_EQ(lat, 2u);
    sys.warmInst(0x51000);
    bool done = false;
    Tick start = eq.curTick();
    EXPECT_TRUE(sys.instAccess(0x51000, [&] { done = true; }));
    while (!done)
        eq.runUntil(eq.curTick() + 1);
    EXPECT_EQ(eq.curTick() - start, 2u);
}


TEST_F(HierarchyFixture, SharedL2BlockMergesIAndDMisses)
{
    // An I-miss and a D-miss to the same 128-byte L2 block: the second
    // requester merges into the L2 MSHR rather than issuing a second
    // memory read.
    bool i_done = false, d_done = false;
    EXPECT_TRUE(sys.instAccess(0x80000, [&] { i_done = true; }));
    advance(1);
    EXPECT_TRUE(
        sys.dataAccess(0x80040, 8, false, [&] { d_done = true; }));
    eq.drain();
    EXPECT_TRUE(i_done);
    EXPECT_TRUE(d_done);
    // One main-memory read served both.
    EXPECT_EQ(sys.unified().misses.value(), 2u);
    EXPECT_EQ(sys.unified().mshrMerges.value(), 1u);
}

TEST_F(HierarchyFixture, WriteMissAllocates)
{
    timedData(0x90000, /*write=*/true);
    advance(1);
    // The written block is now L1-resident: the next read hits.
    Cycles lat = timedData(0x90000, /*write=*/false);
    EXPECT_EQ(lat, 2u);
}

TEST_F(HierarchyFixture, IndependentBankPairSameCycle)
{
    // Warm two blocks in different D-cache banks, then hit both in the
    // same cycle.
    sys.warmData(0xa0000, false);
    sys.warmData(0xa0020, false); // next block -> next bank
    bool d1 = false, d2 = false;
    EXPECT_TRUE(sys.dataAccess(0xa0000, 8, false, [&] { d1 = true; }));
    EXPECT_TRUE(sys.dataAccess(0xa0020, 8, false, [&] { d2 = true; }));
    eq.drain();
    EXPECT_TRUE(d1);
    EXPECT_TRUE(d2);
}

} // anonymous namespace
} // namespace cwsim
