/**
 * @file
 * Tests for the host-side telemetry pieces (src/obs/metrics,
 * src/obs/spans): histogram bucket/quantile edge cases, the strict
 * line grammar of the Prometheus text exposition, the flat-JSON
 * export round-tripping through sweep::parseFlatJson, and the
 * trace-event writer producing a loadable JSON array.
 */

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "obs/spans.hh"
#include "sweep/jsonl.hh"

namespace cwsim
{
namespace
{

using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceEventWriter;

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

TEST(ObsHistogram, EmptyHistogramHasNoCountAndNanQuantiles)
{
    Histogram h({1.0, 2.0, 4.0});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    EXPECT_TRUE(std::isnan(h.quantile(0.99)));
}

TEST(ObsHistogram, SingleSampleLandsInItsCoveringBucket)
{
    Histogram h({1.0, 2.0, 4.0});
    h.observe(1.5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.sum(), 1.5);
    // Buckets are upper edges: 1.5 belongs to (1, 2].
    EXPECT_EQ(h.bucketValue(0), 0u);
    EXPECT_EQ(h.bucketValue(1), 1u);
    EXPECT_EQ(h.bucketValue(2), 0u);
    // Any quantile of a one-sample histogram interpolates inside the
    // covering bucket, so it must land within that bucket's edges.
    for (double q : {0.1, 0.5, 0.9, 1.0}) {
        double est = h.quantile(q);
        EXPECT_GE(est, 1.0) << "q=" << q;
        EXPECT_LE(est, 2.0) << "q=" << q;
    }
}

TEST(ObsHistogram, BoundaryValueCountsIntoTheLowerBucket)
{
    // Prometheus le semantics: a sample equal to an upper bound is
    // counted by that bound's bucket.
    Histogram h({1.0, 2.0});
    h.observe(1.0);
    EXPECT_EQ(h.bucketValue(0), 1u);
    EXPECT_EQ(h.bucketValue(1), 0u);
}

TEST(ObsHistogram, OverflowSamplesClampQuantileToHighestFiniteBound)
{
    Histogram h({1.0, 2.0, 4.0});
    h.observe(100.0); // beyond every finite bound -> +Inf bucket
    h.observe(500.0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucketValue(3), 2u) << "last index is the +Inf bucket";
    // The estimate cannot exceed what the layout can represent.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);
}

TEST(ObsHistogram, QuantilesInterpolateAcrossBuckets)
{
    Histogram h({10.0, 20.0, 30.0});
    // 10 samples in (0,10], 10 in (10,20]: p50 sits at the boundary,
    // p25 inside the first bucket, p75 inside the second.
    for (int i = 0; i < 10; ++i)
        h.observe(5.0);
    for (int i = 0; i < 10; ++i)
        h.observe(15.0);
    EXPECT_NEAR(h.quantile(0.5), 10.0, 1.0);
    EXPECT_GT(h.quantile(0.75), 10.0);
    EXPECT_LE(h.quantile(0.75), 20.0);
    EXPECT_LE(h.quantile(0.25), 10.0);
    EXPECT_GT(h.quantile(0.25), 0.0);
}

TEST(ObsHistogram, DefaultLatencyLayoutIsAscendingAndSpansTheRange)
{
    std::vector<double> bounds = Histogram::latencySeconds();
    ASSERT_GE(bounds.size(), 8u);
    for (size_t i = 1; i < bounds.size(); ++i)
        EXPECT_GT(bounds[i], bounds[i - 1]) << "at " << i;
    EXPECT_LE(bounds.front(), 0.001);
    EXPECT_GE(bounds.back(), 60.0);
}

// ---------------------------------------------------------------------
// Registry + Prometheus exposition
// ---------------------------------------------------------------------

void
populateRegistry(MetricsRegistry &reg)
{
    reg.counter("test_events_total", "Events seen.").inc(3);
    reg.counter("test_outcomes_total", "Outcomes by kind.", "kind",
                "ok")
        .inc(2);
    reg.counter("test_outcomes_total", "Outcomes by kind.", "kind",
                "crash");
    reg.gauge("test_depth", "Current depth.").set(1.5);
    Histogram &h = reg.histogram("test_latency_seconds",
                                 "Latency.", {0.1, 1.0, 10.0});
    h.observe(0.05);
    h.observe(5.0);
}

TEST(ObsRegistry, RegistrationIsIdempotentPerNameAndLabel)
{
    MetricsRegistry reg;
    obs::Counter &a = reg.counter("x_total", "X.");
    obs::Counter &b = reg.counter("x_total", "X.");
    EXPECT_EQ(&a, &b);
    obs::Counter &ok = reg.counter("y_total", "Y.", "kind", "ok");
    obs::Counter &bad = reg.counter("y_total", "Y.", "kind", "bad");
    EXPECT_NE(&ok, &bad) << "distinct label values, distinct series";
    EXPECT_EQ(&ok, &reg.counter("y_total", "Y.", "kind", "ok"));
}

TEST(ObsRegistry, PrometheusTextObeysTheExpositionLineGrammar)
{
    MetricsRegistry reg;
    populateRegistry(reg);
    std::string text = reg.prometheusText();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n') << "exposition must end with newline";

    // version 0.0.4 grammar, strict: every line is a HELP comment, a
    // TYPE comment, or a sample with an optional single label and a
    // numeric value.
    const std::regex help(R"(# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+)");
    const std::regex type(
        R"(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram))");
    const std::regex sample(
        R"([a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"\})? (-?[0-9.e+-]+|\+Inf|NaN))");

    std::map<std::string, int> typedNames;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty()) << "no blank lines in exposition";
        if (line.rfind("# HELP", 0) == 0) {
            EXPECT_TRUE(std::regex_match(line, help)) << line;
        } else if (line.rfind("# TYPE", 0) == 0) {
            EXPECT_TRUE(std::regex_match(line, type)) << line;
            std::istringstream t(line);
            std::string hash, kw, name;
            t >> hash >> kw >> name;
            EXPECT_EQ(typedNames.count(name), 0u)
                << "TYPE emitted twice for " << name;
            typedNames[name] = 1;
        } else {
            EXPECT_TRUE(std::regex_match(line, sample)) << line;
            // Samples must follow their TYPE header: the series name
            // (label and histogram suffix stripped) has been typed.
            std::string name = line.substr(0, line.find_first_of("{ "));
            for (const char *suffix : {"_bucket", "_sum", "_count"}) {
                size_t at = name.rfind(suffix);
                if (at != std::string::npos &&
                    at + std::string(suffix).size() == name.size() &&
                    typedNames.count(name.substr(0, at))) {
                    name = name.substr(0, at);
                    break;
                }
            }
            EXPECT_EQ(typedNames.count(name), 1u)
                << "sample before its TYPE: " << line;
        }
    }
}

TEST(ObsRegistry, PrometheusHistogramBucketsAreCumulativeWithInf)
{
    MetricsRegistry reg;
    populateRegistry(reg);
    std::string text = reg.prometheusText();
    // Two samples: 0.05 <= 0.1, 5.0 <= 10.0. Cumulative counts.
    EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"0.1\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"1\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"10\"} 2"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"+Inf\"} 2"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("test_latency_seconds_count 2"),
              std::string::npos)
        << text;
    // Both label series of the outcome counter appear.
    EXPECT_NE(text.find("test_outcomes_total{kind=\"ok\"} 2"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("test_outcomes_total{kind=\"crash\"} 0"),
              std::string::npos)
        << text;
}

TEST(ObsRegistry, FlatJsonParsesAndFlattensLabelsAndQuantiles)
{
    MetricsRegistry reg;
    populateRegistry(reg);
    std::string json = reg.flatJson();
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(json, fields)) << json;
    EXPECT_EQ(fields["test_events_total"], "3");
    EXPECT_EQ(fields["test_outcomes_total_ok"], "2");
    EXPECT_EQ(fields["test_outcomes_total_crash"], "0");
    EXPECT_EQ(fields["test_depth"], "1.5");
    EXPECT_EQ(fields["test_latency_seconds_count"], "2");
    ASSERT_TRUE(fields.count("test_latency_seconds_p50"));
    ASSERT_TRUE(fields.count("test_latency_seconds_p90"));
    ASSERT_TRUE(fields.count("test_latency_seconds_p99"));
    double p50 = std::strtod(fields["test_latency_seconds_p50"].c_str(),
                             nullptr);
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, 10.0);
}

TEST(ObsRegistry, EmptyHistogramQuantilesExportAsQuotedNan)
{
    MetricsRegistry reg;
    reg.histogram("idle_seconds", "Never observed.", {1.0});
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(reg.flatJson(), fields));
    EXPECT_EQ(fields["idle_seconds_count"], "0");
    EXPECT_EQ(fields["idle_seconds_p50"], "nan")
        << "non-finite numbers must not corrupt the JSON";
}

// ---------------------------------------------------------------------
// Trace-event writer
// ---------------------------------------------------------------------

TEST(ObsSpans, WriterEmitsAValidOneEventPerLineJsonArray)
{
    const std::string path =
        "trace_test." + std::to_string(::getpid()) + ".json";
    {
        TraceEventWriter w(path);
        ASSERT_TRUE(w.ok());
        w.metaProcessName(1, "clients");
        w.metaThreadName(1, 7, "client 7");
        w.complete("run", "run", 1, 7, 100, 500,
                   {{"workload", "129.compress"}});
        w.complete("queued", "sched", 1, 7, 100, 50);
        w.instant("cache_hit", "cache", 1, 7, 700,
                  {{"quote\"backslash\\", "tab\there"}});
        w.finish();
        w.finish(); // idempotent
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    std::remove(path.c_str());

    ASSERT_GE(lines.size(), 3u);
    EXPECT_EQ(lines.front(), "[");
    EXPECT_EQ(lines.back(), "]");
    // Each interior line is one event object, comma-separated; the
    // flat-JSON parser validates each after stripping "args" (the one
    // nested object the format uses) and the trailing comma.
    size_t completes = 0;
    for (size_t i = 1; i + 1 < lines.size(); ++i) {
        std::string body = lines[i];
        if (!body.empty() && body.back() == ',')
            body.pop_back();
        size_t at = body.find(",\"args\":{");
        if (at != std::string::npos) {
            size_t close = body.rfind('}', body.size() - 2);
            ASSERT_NE(close, std::string::npos) << body;
            body = body.substr(0, at) + body.substr(close + 1);
        }
        std::map<std::string, std::string> evf;
        ASSERT_TRUE(sweep::parseFlatJson(body, evf)) << lines[i];
        ASSERT_TRUE(evf.count("ph")) << body;
        if (evf["ph"] == "X") {
            ++completes;
            double ts = std::strtod(evf["ts"].c_str(), nullptr);
            double dur = std::strtod(evf["dur"].c_str(), nullptr);
            EXPECT_GE(ts, 0.0) << body;
            EXPECT_GE(dur, 0.0) << "negative duration: " << body;
        }
    }
    EXPECT_EQ(completes, 2u);
}

TEST(ObsSpans, TimestampsAreClampedNonNegative)
{
    const std::string path =
        "trace_clamp." + std::to_string(::getpid()) + ".json";
    TraceEventWriter w(path);
    ASSERT_TRUE(w.ok());
    // A time point before the writer's epoch must clamp to 0, not
    // wrap to a huge unsigned microsecond count.
    TraceEventWriter::Clock::time_point past =
        TraceEventWriter::Clock::now() - std::chrono::seconds(10);
    EXPECT_EQ(w.tsUs(past), 0u);
    w.finish();
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace cwsim
