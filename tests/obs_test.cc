/**
 * @file
 * Tests for the observability layer (src/obs/): trace-flag parsing,
 * TraceManager output gating, O3PipeView format validation, the
 * interval-stats sampler, and an end-to-end pipeline-traced Processor
 * run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "cpu/processor.hh"
#include "obs/interval.hh"
#include "obs/pipeview.hh"
#include "obs/trace.hh"
#include "sim/config.hh"
#include "sweep/jsonl.hh"
#include "workloads/workload.hh"

namespace cwsim
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "cwsim_obs_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Every test starts and ends with a pristine global TraceManager. */
class ObsTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        obs::TraceManager::instance().resetForTesting();
        obs::setRunLabel("");
    }
    void TearDown() override
    {
        obs::TraceManager::instance().resetForTesting();
        obs::setRunLabel("");
    }
};

TEST_F(ObsTest, FlagNamesRoundTrip)
{
    for (size_t i = 0; i < obs::num_trace_flags; ++i) {
        auto flag = static_cast<obs::TraceFlag>(i);
        obs::TraceFlag parsed;
        ASSERT_TRUE(
            obs::traceFlagFromName(obs::traceFlagName(flag), parsed));
        EXPECT_EQ(parsed, flag);
    }
    obs::TraceFlag dummy;
    EXPECT_FALSE(obs::traceFlagFromName("NoSuchFlag", dummy));
    EXPECT_FALSE(obs::traceFlagFromName("mdp", dummy)); // case matters
}

TEST_F(ObsTest, ConfigureEnablesListedFlagsOnly)
{
    obs::TraceManager &tm = obs::TraceManager::instance();
    EXPECT_FALSE(tm.anyEnabled());
    EXPECT_FALSE(obs::tracingActive());

    ASSERT_TRUE(tm.configure("MDP,Recovery"));
    EXPECT_TRUE(obs::tracingActive());
    EXPECT_TRUE(tm.enabled(obs::TraceFlag::MDP));
    EXPECT_TRUE(tm.enabled(obs::TraceFlag::Recovery));
    EXPECT_FALSE(tm.enabled(obs::TraceFlag::Fetch));
    EXPECT_FALSE(tm.enabled(obs::TraceFlag::LSQ));
}

TEST_F(ObsTest, ConfigureAllEnablesEverything)
{
    obs::TraceManager &tm = obs::TraceManager::instance();
    ASSERT_TRUE(tm.configure("all"));
    for (size_t i = 0; i < obs::num_trace_flags; ++i)
        EXPECT_TRUE(tm.enabled(static_cast<obs::TraceFlag>(i)));
}

TEST_F(ObsTest, ConfigureRejectsUnknownNameWithoutSideEffects)
{
    obs::TraceManager &tm = obs::TraceManager::instance();
    std::string err;
    EXPECT_FALSE(tm.configure("MDP,Bogus", &err));
    EXPECT_NE(err.find("Bogus"), std::string::npos);
    EXPECT_NE(err.find("Recovery"), std::string::npos); // valid list
    // The whole spec is validated before anything is enabled.
    EXPECT_FALSE(tm.enabled(obs::TraceFlag::MDP));
    EXPECT_FALSE(tm.anyEnabled());
}

TEST_F(ObsTest, TracePointWritesWhenEnabledOnly)
{
    std::string path = tmpPath("trace.log");
    std::remove(path.c_str());
    obs::TraceManager &tm = obs::TraceManager::instance();
    tm.setOutputPath(path);

    // Disabled: the macro must not touch the output at all.
    obs::setTraceCycle(41);
    CWSIM_TRACE(MDP, "invisible %d", 1);
    EXPECT_EQ(slurp(path), "");

    ASSERT_TRUE(tm.configure("MDP"));
    obs::setTraceCycle(42);
    obs::setRunLabel("129.compress NAS/NAV");
    CWSIM_TRACE(MDP, "visible %d", 2);
    CWSIM_TRACE(Recovery, "still invisible"); // flag not enabled

    tm.resetForTesting(); // closes the file
    std::string text = slurp(path);
    EXPECT_NE(text.find("42: MDP: [129.compress NAS/NAV] visible 2"),
              std::string::npos);
    EXPECT_EQ(text.find("invisible"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(ObsTest, ValidatePipeViewLine)
{
    EXPECT_EQ(
        obs::validatePipeViewLine(
            "O3PipeView:fetch:5000:0x00000040:0:12:lw r3, 0(r5)"),
        "");
    EXPECT_EQ(obs::validatePipeViewLine("O3PipeView:issue:5500"), "");
    EXPECT_EQ(obs::validatePipeViewLine("O3PipeView:retire:6000"), "");
    EXPECT_EQ(obs::validatePipeViewLine(
                  "O3PipeView:retire:6000:store:6500"),
              "");

    EXPECT_NE(obs::validatePipeViewLine("garbage"), "");
    EXPECT_NE(obs::validatePipeViewLine("O3PipeView:warp:100"), "");
    EXPECT_NE(obs::validatePipeViewLine("O3PipeView:issue:abc"), "");
    EXPECT_NE(obs::validatePipeViewLine("O3PipeView:fetch:100"), "");
    EXPECT_NE(obs::validatePipeViewLine(
                  "O3PipeView:fetch:100:40:0:1:nop"),
              ""); // pc must be 0x<hex>
    EXPECT_NE(obs::validatePipeViewLine(
                  "O3PipeView:retire:6000:load:6500"),
              "");
}

TEST_F(ObsTest, PipeViewWriterRoundTripsThroughValidator)
{
    std::string path = tmpPath("pipeview.out");
    {
        obs::PipeViewWriter writer(path);
        ASSERT_TRUE(writer.valid());
        obs::PipeViewWriter::Record r;
        r.seq = 1;
        r.pc = 0x40;
        r.disasm = "lw r3, 0(r5) [replay x2]";
        r.fetch = 10;
        r.decode = 10;
        r.rename = 11;
        r.dispatch = 11;
        r.issue = 12;
        r.complete = 14;
        r.retire = 15;
        writer.write(r);

        r.seq = 2;
        r.disasm = "sw r3, 4(r5)";
        r.retire = 16;
        r.storeComplete = 16;
        writer.write(r);

        // A squashed instruction: only fetch reached, retire 0.
        obs::PipeViewWriter::Record sq;
        sq.seq = 3;
        sq.pc = 0x48;
        sq.disasm = "addi r1, r1, 1 [squash: mem-order]";
        sq.fetch = 12;
        writer.write(sq);
        EXPECT_EQ(writer.recordsWritten(), 3u);
    }

    std::ifstream in(path);
    size_t records = 0;
    EXPECT_EQ(obs::validatePipeViewStream(in, &records), "");
    EXPECT_EQ(records, 3u);

    // Ticks scale by pipeview_ticks_per_cycle (fetch at cycle 10).
    std::string text = slurp(path);
    EXPECT_NE(text.find(strfmt("O3PipeView:fetch:%llu",
                               static_cast<unsigned long long>(
                                   10 * obs::pipeview_ticks_per_cycle))),
              std::string::npos);
    std::remove(path.c_str());
}

TEST_F(ObsTest, ValidatorRejectsTruncatedAndMisorderedStreams)
{
    std::istringstream truncated(
        "O3PipeView:fetch:100:0x40:0:1:nop\n"
        "O3PipeView:decode:100\n");
    size_t records = 99;
    EXPECT_NE(obs::validatePipeViewStream(truncated, &records), "");

    std::istringstream misordered(
        "O3PipeView:fetch:100:0x40:0:1:nop\n"
        "O3PipeView:issue:120\n");
    EXPECT_NE(obs::validatePipeViewStream(misordered, nullptr), "");
}

TEST_F(ObsTest, IntervalSamplerComputesDeltas)
{
    std::string path = tmpPath("intervals.jsonl");
    std::remove(path.c_str());
    {
        obs::IntervalSampler sampler(path, 1000, "unit test");
        ASSERT_TRUE(sampler.valid());
        EXPECT_FALSE(sampler.due(999));
        EXPECT_TRUE(sampler.due(1000));

        obs::IntervalCounters c;
        c.commits = 2500;
        c.violations = 3;
        c.occupancySum = 97000;
        c.occupancyCount = 1000;
        sampler.sample(1000, c);
        EXPECT_FALSE(sampler.due(1000));
        EXPECT_TRUE(sampler.due(2000));

        c.commits = 4000; // +1500 this interval
        c.violations = 3;
        c.replays = 7;
        c.occupancySum = 197000;
        c.occupancyCount = 2000;
        sampler.sample(2000, c);
        EXPECT_EQ(sampler.samplesWritten(), 2u);
    }

    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(line, fields));
    EXPECT_EQ(fields.at("label"), "unit test");
    EXPECT_EQ(fields.at("cycle"), "1000");
    EXPECT_EQ(fields.at("interval"), "1000");
    EXPECT_EQ(fields.at("commits"), "2500");
    EXPECT_EQ(fields.at("violations"), "3");
    EXPECT_EQ(std::stod(fields.at("ipc")), 2.5);
    EXPECT_EQ(std::stod(fields.at("window_occupancy")), 97.0);

    ASSERT_TRUE(std::getline(in, line));
    fields.clear();
    ASSERT_TRUE(sweep::parseFlatJson(line, fields));
    EXPECT_EQ(fields.at("cycle"), "2000");
    EXPECT_EQ(fields.at("commits"), "1500"); // delta, not total
    EXPECT_EQ(fields.at("replays"), "7");
    EXPECT_EQ(std::stod(fields.at("ipc")), 1.5);
    EXPECT_EQ(std::stod(fields.at("window_occupancy")), 100.0);
    std::remove(path.c_str());
}

TEST_F(ObsTest, IntervalSamplerFinalizeFlushesTrailingPartialInterval)
{
    std::string path = tmpPath("intervals_tail.jsonl");
    std::remove(path.c_str());
    {
        // Run length 2750 with period 1000: two full intervals plus a
        // 750-cycle tail that only finalize() can emit.
        obs::IntervalSampler sampler(path, 1000, "tail test");
        ASSERT_TRUE(sampler.valid());
        obs::IntervalCounters c;
        c.commits = 1000;
        sampler.sample(1000, c);
        c.commits = 2100;
        sampler.sample(2000, c);
        c.commits = 2700;
        sampler.finalize(2750, c);
        EXPECT_EQ(sampler.samplesWritten(), 3u);
        // A second finalize at the same cycle must not double-emit.
        sampler.finalize(2750, c);
        EXPECT_EQ(sampler.samplesWritten(), 3u);
    }

    std::ifstream in(path);
    std::string line;
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(std::getline(in, line));
    ASSERT_TRUE(std::getline(in, line));
    ASSERT_TRUE(std::getline(in, line)); // the flushed tail
    ASSERT_TRUE(sweep::parseFlatJson(line, fields));
    EXPECT_EQ(fields.at("cycle"), "2750");
    EXPECT_EQ(fields.at("interval"), "750");
    EXPECT_EQ(fields.at("commits"), "600");
    EXPECT_FALSE(std::getline(in, line));
    std::remove(path.c_str());

    // A run whose length lands exactly on a period boundary must NOT
    // gain an extra empty sample from finalize().
    std::string exact_path = tmpPath("intervals_exact.jsonl");
    std::remove(exact_path.c_str());
    {
        obs::IntervalSampler sampler(exact_path, 1000, "exact");
        obs::IntervalCounters c;
        c.commits = 500;
        sampler.sample(1000, c);
        sampler.finalize(1000, c);
        EXPECT_EQ(sampler.samplesWritten(), 1u);
    }
    std::remove(exact_path.c_str());
}

TEST_F(ObsTest, ProcessorEmitsValidPipelineTraceAndIntervals)
{
    std::string pipe_path = tmpPath("proc_pipeview.out");
    std::string interval_path = tmpPath("proc_intervals.jsonl");
    std::remove(interval_path.c_str());

    obs::TraceManager &tm = obs::TraceManager::instance();
    ASSERT_TRUE(tm.setPipeViewPath(pipe_path));
    tm.setInterval(500, interval_path);

    Workload w = workloads::build("129.compress", 4000);
    PrepassResult pre = runPrepass(w.program);
    ASSERT_TRUE(pre.halted);

    // NAS/NAV: naive speculation actually miss-speculates, so the
    // trace exercises the squash annotations too.
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    cfg.maxCycles = 10'000'000;
    obs::setRunLabel("129.compress " + cfg.name());
    Processor proc(cfg, w.program, &pre.deps);
    proc.run();
    ASSERT_TRUE(proc.halted());

    // Tracing must not perturb the simulation itself.
    EXPECT_EQ(proc.procStats().commits.value(), pre.instCount);

    tm.resetForTesting(); // close the pipeview file before reading

    std::ifstream in(pipe_path);
    ASSERT_TRUE(in.good());
    size_t records = 0;
    EXPECT_EQ(obs::validatePipeViewStream(in, &records), "");
    // Every commit produced a record (squashed insts add more).
    EXPECT_GE(records, static_cast<size_t>(pre.instCount));

    // Interval JSONL: every line parses field-for-field.
    std::ifstream intervals(interval_path);
    ASSERT_TRUE(intervals.good());
    std::string line;
    size_t interval_lines = 0;
    uint64_t total_commits = 0;
    while (std::getline(intervals, line)) {
        std::map<std::string, std::string> fields;
        ASSERT_TRUE(sweep::parseFlatJson(line, fields)) << line;
        for (const char *key :
             {"label", "cycle", "interval", "commits", "ipc",
              "violations", "replays", "false_dep_loads",
              "window_occupancy"}) {
            EXPECT_EQ(fields.count(key), 1u) << key << ": " << line;
        }
        EXPECT_EQ(fields.at("label"), "129.compress " + cfg.name());
        total_commits += std::stoull(fields.at("commits"));
        ++interval_lines;
    }
    EXPECT_GT(interval_lines, 0u);
    // Interval deltas sum to exactly the total: run() flushes the
    // trailing partial interval, so no commits are lost after the
    // last period boundary.
    EXPECT_EQ(total_commits, pre.instCount);

    std::remove(pipe_path.c_str());
    std::remove(interval_path.c_str());
}

TEST_F(ObsTest, ReleaseModeTracePointCompilesToNothingObservable)
{
    // With no flags enabled, a trace point must leave no trace output
    // anywhere. (The CI trace-smoke job asserts the same property on a
    // whole bench binary's stdout+stderr.)
    std::string path = tmpPath("silent.log");
    std::remove(path.c_str());
    obs::TraceManager &tm = obs::TraceManager::instance();
    tm.setOutputPath(path);
    for (int i = 0; i < 1000; ++i)
        CWSIM_TRACE(Recovery, "never formatted %d", i);
    tm.resetForTesting();
    EXPECT_EQ(slurp(path), "");
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace cwsim
