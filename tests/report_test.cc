/**
 * @file
 * Tests for the sweep-report toolchain: loading sweep JSONL files,
 * rendering the markdown/HTML report (IPC matrix, Figure 2/5/6
 * tables, CPI-stack breakdowns), and the stats diff that backs the CI
 * stats-diff job (simulated stats drift, host-profiling fields don't).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <unistd.h>

#include "mdp/dep_profile.hh"
#include "obs/cpi_stack.hh"
#include "obs/depprof.hh"
#include "sweep/report.hh"
#include "sweep/run_cache.hh"

namespace cwsim
{
namespace
{

using obs::CpiCause;
using sweep::DiffResult;
using sweep::ReportFormat;
using sweep::ReportRecord;

ReportRecord
makeRun(const std::string &workload, const std::string &config,
        uint64_t cycles, uint64_t commits)
{
    ReportRecord rec;
    rec.run.workload = workload;
    rec.run.config = config;
    rec.run.cycles = cycles;
    rec.run.commits = commits;
    rec.run.committedLoads = commits / 4;
    rec.run.committedStores = commits / 8;
    rec.run.violations = 3;
    rec.scale = 2000;

    // A conserving CPI stack: committed slots plus a cache-miss rest.
    rec.run.commitWidth = 8;
    rec.run.cpiSlots[size_t(CpiCause::Committed)] = commits;
    rec.run.cpiSlots[size_t(CpiCause::CacheMiss)] =
        cycles * 8 - commits;
    return rec;
}

/** The three Figure 2 configs for one workload. */
std::vector<ReportRecord>
fig2Records(const std::string &workload, uint64_t no_commits,
            uint64_t nav_commits, uint64_t oracle_commits)
{
    return {makeRun(workload, "NAS/NO", 1000, no_commits),
            makeRun(workload, "NAS/NAV", 1000, nav_commits),
            makeRun(workload, "NAS/ORACLE", 1000, oracle_commits)};
}

TEST(Report, RendersIpcMatrixFig2AndCpiStacks)
{
    std::vector<ReportRecord> records =
        fig2Records("129.compress", 1600, 2800, 3360);
    std::string md =
        sweep::renderReport(records, ReportFormat::Markdown);

    // Summary and IPC matrix.
    EXPECT_NE(md.find("1 workload(s) x 3 config(s)"),
              std::string::npos) << md;
    EXPECT_NE(md.find("## IPC by configuration"), std::string::npos);
    EXPECT_NE(md.find("| 129.compress | 1.600 | 2.800 | 3.360 |"),
              std::string::npos) << md;

    // Figure 2: NAV/NO = 2800/1600 = +75.0%, ORACLE/NO = +110.0%,
    // gap = 3360/2800 = +20.0%.
    EXPECT_NE(md.find("## Figure 2"), std::string::npos);
    EXPECT_NE(md.find("+75.0%"), std::string::npos) << md;
    EXPECT_NE(md.find("+110.0%"), std::string::npos) << md;
    EXPECT_NE(md.find("+20.0%"), std::string::npos) << md;
    EXPECT_NE(md.find("geomean (int)"), std::string::npos);

    // CPI stacks: NAS/NO committed share = 1600/8000 = 20.0%.
    EXPECT_NE(md.find("## CPI stacks"), std::string::npos);
    EXPECT_NE(md.find("| 129.compress | 20.0% | 80.0% |"),
              std::string::npos) << md;

    // Without SEL/STORE/SYNC configs, figures 5 and 6 are omitted.
    EXPECT_EQ(md.find("## Figure 5"), std::string::npos);
    EXPECT_EQ(md.find("## Figure 6"), std::string::npos);

    std::string html = sweep::renderReport(records, ReportFormat::Html);
    EXPECT_NE(html.find("<table>"), std::string::npos);
    EXPECT_NE(html.find("<td>129.compress</td>"), std::string::npos);
    EXPECT_NE(html.find("+75.0%"), std::string::npos);
}

TEST(Report, RendersFig5Fig6AndFailedRuns)
{
    std::vector<ReportRecord> records =
        fig2Records("099.go", 1600, 2000, 2400);
    records.push_back(makeRun("099.go", "NAS/SEL", 1000, 2300));
    records.push_back(makeRun("099.go", "NAS/STORE", 1000, 2100));
    records.push_back(makeRun("099.go", "NAS/SYNC", 1000, 2200));

    ReportRecord failed = makeRun("099.go", "AS/NAV", 0, 0);
    failed.run.ok = false;
    failed.run.error = "SimError: watchdog";
    failed.run.failKind = harness::FailKind::SimError;
    records.push_back(failed);

    // A contained host-level failure carries its kind and the
    // [injected] containment tag into the table.
    ReportRecord crashed = makeRun("099.go", "AS/SEL", 0, 0);
    crashed.run.ok = false;
    crashed.run.error = "isolated run died: crash(SIGSEGV)";
    crashed.run.failKind = harness::FailKind::Crash;
    crashed.run.failDetail = "SIGSEGV";
    crashed.run.injectedHostFault = true;
    records.push_back(crashed);

    std::string md =
        sweep::renderReport(records, ReportFormat::Markdown);
    EXPECT_NE(md.find("## Figure 5"), std::string::npos);
    // SEL/NAV = 2300/2000 = +15.0%.
    EXPECT_NE(md.find("+15.0%"), std::string::npos) << md;
    EXPECT_NE(md.find("## Figure 6"), std::string::npos);
    // SYNC captured (2200-2000)/(2400-2000) = 50.0% of the gap.
    EXPECT_NE(md.find("50.0%"), std::string::npos) << md;

    EXPECT_NE(md.find("## Failed runs"), std::string::npos);
    EXPECT_NE(md.find("SimError: watchdog"), std::string::npos);
    EXPECT_NE(md.find("sim_error"), std::string::npos) << md;
    EXPECT_NE(md.find("crash(SIGSEGV) [injected]"), std::string::npos)
        << md;
    EXPECT_NE(md.find("FAILED"), std::string::npos);
}

TEST(Report, OmitsCpiStackForPreV3Records)
{
    ReportRecord rec = makeRun("130.li", "NAS/NAV", 1000, 2000);
    rec.run.commitWidth = 0; // pre-v3: stack unknown, not zero-loss
    rec.run.cpiSlots = {};
    std::string md =
        sweep::renderReport({rec}, ReportFormat::Markdown);
    EXPECT_NE(md.find("No records with CPI-stack data"),
              std::string::npos) << md;
}

TEST(ReportDiff, IdenticalRecordsCompareClean)
{
    std::vector<ReportRecord> a =
        fig2Records("129.compress", 1600, 2800, 3300);
    std::vector<ReportRecord> b = a;

    // Host-profiling fields differ run-to-run by design and must not
    // drift: the CI job compares across machines and --jobs counts.
    b[0].run.wallMs = 1234.5;
    b[0].run.cacheHit = true;
    b[0].run.diagnostic = "something host-side";

    DiffResult d = sweep::diffRunRecords(a, b);
    EXPECT_TRUE(d.clean());
    EXPECT_EQ(d.compared, 3u);
    EXPECT_EQ(d.cpiSkipped, 0u);
    EXPECT_NE(sweep::formatDiff(d).find("no drift"),
              std::string::npos);
}

TEST(ReportDiff, FlagsDriftingSimulatedFieldsByName)
{
    std::vector<ReportRecord> a =
        fig2Records("129.compress", 1600, 2800, 3300);
    std::vector<ReportRecord> b = a;
    b[1].run.cycles = 1001;
    b[1].run.cpiSlots[size_t(CpiCause::MemDepSquash)] = 7;

    DiffResult d = sweep::diffRunRecords(a, b);
    EXPECT_FALSE(d.clean());
    ASSERT_EQ(d.drift.size(), 2u);
    EXPECT_EQ(d.drift[0].field, "cycles");
    EXPECT_EQ(d.drift[0].baseline, "1000");
    EXPECT_EQ(d.drift[0].current, "1001");
    EXPECT_EQ(d.drift[1].field, "cpi_mem_dep_squash");

    std::string text = sweep::formatDiff(d);
    EXPECT_NE(text.find("DRIFT 129.compress NAS/NAV (scale 2000): "
                        "cycles 1000 -> 1001"),
              std::string::npos) << text;
}

TEST(ReportDiff, MissingAndExtraRunsAreNotClean)
{
    std::vector<ReportRecord> a =
        fig2Records("129.compress", 1600, 2800, 3300);
    std::vector<ReportRecord> b(a.begin(), a.end() - 1);
    b.push_back(makeRun("099.go", "NAS/NO", 1000, 1700));

    DiffResult d = sweep::diffRunRecords(a, b);
    EXPECT_FALSE(d.clean());
    EXPECT_EQ(d.compared, 2u);
    EXPECT_EQ(d.baselineOnly, 1u);
    EXPECT_EQ(d.currentOnly, 1u);
}

TEST(ReportDiff, SkipsCpiComparisonWhenOneSidePredatesV3)
{
    std::vector<ReportRecord> a =
        fig2Records("129.compress", 1600, 2800, 3300);
    std::vector<ReportRecord> b = a;
    // The baseline predates v3: CPI columns unknown there, so only
    // the shared stats constrain the diff.
    a[0].run.commitWidth = 0;
    a[0].run.cpiSlots = {};

    DiffResult d = sweep::diffRunRecords(a, b);
    EXPECT_TRUE(d.clean());
    EXPECT_EQ(d.cpiSkipped, 1u);
    EXPECT_NE(sweep::formatDiff(d).find("without CPI data"),
              std::string::npos);
}

TEST(ReportDiff, ComparesFailKindButNotHostDependentDetail)
{
    std::vector<ReportRecord> a = {
        makeRun("130.li", "NAS/NAV", 1000, 2000)};
    a[0].run.ok = false;
    a[0].run.failKind = harness::FailKind::Timeout;
    a[0].run.failDetail = "wall-clock 2.0s";
    a[0].run.error = "isolated run died: timeout(wall-clock 2.0s) "
                     "after 1 attempt(s)";
    std::vector<ReportRecord> b = a;

    // Same kind, different detail text (a different host's limits):
    // not drift.
    b[0].run.failDetail = "rlimit-cpu";
    EXPECT_TRUE(sweep::diffRunRecords(a, b).clean());

    // A changed failure class is drift.
    b[0].run.failKind = harness::FailKind::Oom;
    DiffResult d = sweep::diffRunRecords(a, b);
    EXPECT_FALSE(d.clean());
    ASSERT_EQ(d.drift.size(), 1u);
    EXPECT_EQ(d.drift[0].field, "fail_kind");
    EXPECT_EQ(d.drift[0].baseline, "timeout");
    EXPECT_EQ(d.drift[0].current, "oom");
}

TEST(ReportDiff, NanFalseDepLatencyDoesNotSelfDrift)
{
    std::vector<ReportRecord> a = {
        makeRun("130.li", "NAS/NAV", 1000, 2000)};
    a[0].run.falseDepLatency =
        std::numeric_limits<double>::quiet_NaN();
    std::vector<ReportRecord> b = a;
    EXPECT_TRUE(sweep::diffRunRecords(a, b).clean());

    b[0].run.falseDepLatency = 17.5;
    EXPECT_FALSE(sweep::diffRunRecords(a, b).clean());
}

TEST(ReportLoad, RoundTripsRunRecordLinesAndSkipsGarbage)
{
    std::string path =
        "report_load_test." + std::to_string(::getpid()) + ".jsonl";
    {
        std::ofstream out(path);
        ReportRecord rec = makeRun("129.compress", "NAS/NAV", 1000,
                                   2800);
        out << sweep::runRecordLine(rec.run, 0xbeefull, 2000) << "\n";
        out << "this is not json\n";
        out << "{\"v\":99,\"ok\":\"true\"}\n";
    }

    std::vector<ReportRecord> records;
    std::string err;
    size_t rejected = 0;
    ASSERT_TRUE(
        sweep::loadRunRecords(path, records, &err, &rejected));
    EXPECT_EQ(records.size(), 1u);
    EXPECT_EQ(rejected, 2u);
    EXPECT_EQ(records[0].run.workload, "129.compress");
    EXPECT_EQ(records[0].scale, 2000u);
    EXPECT_EQ(records[0].fp, "000000000000beef");
    EXPECT_EQ(records[0].run.commitWidth, 8u);
    EXPECT_EQ(records[0].run.cpiSlots[size_t(CpiCause::Committed)],
              2800u);
    std::remove(path.c_str());

    std::vector<ReportRecord> none;
    EXPECT_FALSE(sweep::loadRunRecords("does-not-exist.jsonl", none,
                                       &err));
    EXPECT_FALSE(err.empty());
}

TEST(ReportLoad, RejectsGarbledScaleInsteadOfTruncating)
{
    // A record whose scale field holds trailing garbage used to parse
    // as its numeric prefix (strtoull with no end check), silently
    // mis-binning the run; it must count as malformed instead.
    std::string path = "report_load_scale_test." +
                       std::to_string(::getpid()) + ".jsonl";
    ReportRecord rec = makeRun("129.compress", "NAS/NAV", 1000, 2800);
    std::string good = sweep::runRecordLine(rec.run, 0xbeefull, 2000);
    std::string garbled = good;
    size_t at = garbled.find("\"scale\":2000");
    ASSERT_NE(at, std::string::npos);
    garbled.replace(at, strlen("\"scale\":2000"), "\"scale\":\"20x0\"");
    {
        std::ofstream out(path);
        out << good << "\n" << garbled << "\n";
    }

    std::vector<ReportRecord> records;
    std::string err;
    size_t rejected = 0;
    ASSERT_TRUE(
        sweep::loadRunRecords(path, records, &err, &rejected));
    EXPECT_EQ(records.size(), 1u);
    EXPECT_EQ(rejected, 1u);
    EXPECT_EQ(records[0].scale, 2000u);
    std::remove(path.c_str());
}

TEST(Report, RendersDependenceSectionsFromV5Summaries)
{
    std::vector<ReportRecord> records =
        fig2Records("129.compress", 1600, 2800, 3360);
    // No profiled records: the dep sections stay out of the report.
    std::string bare =
        sweep::renderReport(records, ReportFormat::Markdown);
    EXPECT_EQ(bare.find("Hot dependence edges"), std::string::npos);

    records[1].run.depProfiled = true;
    records[1].run.depLoads = 5;
    records[1].run.depStores = 3;
    records[1].run.depEdges = 2;
    records[1].run.depHotEdges = "0x200-0x100:7:0;0x210-0x104:2:1";

    std::string md =
        sweep::renderReport(records, ReportFormat::Markdown);
    EXPECT_NE(md.find("## Hot dependence edges"), std::string::npos)
        << md;
    EXPECT_NE(md.find("1 run(s) carry a dependence-profile summary"),
              std::string::npos) << md;
    // The hottest edge leads its config table.
    EXPECT_NE(md.find("| 129.compress | 0x200 | 0x100 | 7 | 0 |"),
              std::string::npos) << md;
    // And the per-PC rollup aggregates both roles.
    EXPECT_NE(md.find("## Dependence hot spots by static PC"),
              std::string::npos) << md;
    EXPECT_NE(md.find("| 0x200 | store | 7 | 0 | 1 |"),
              std::string::npos) << md;
    EXPECT_NE(md.find("| 0x100 | load | 7 | 0 | 1 |"),
              std::string::npos) << md;
}

TEST(Report, TopCapsOpenEndedTablesWithFooter)
{
    std::vector<ReportRecord> records =
        fig2Records("129.compress", 1600, 2800, 3360);
    records[1].run.depProfiled = true;
    records[1].run.depHotEdges =
        "0x200-0x100:9:0;0x210-0x104:8:0;0x220-0x108:7:0";
    records[1].run.depEdges = 3;

    std::string capped =
        sweep::renderReport(records, ReportFormat::Markdown, 2);
    EXPECT_NE(capped.find("_1 more row(s) dropped; raise --top to "
                          "see them._"),
              std::string::npos) << capped;
    EXPECT_EQ(capped.find("0x220"), std::string::npos) << capped;

    // top = 0 means unlimited: every row, no footer.
    std::string full =
        sweep::renderReport(records, ReportFormat::Markdown, 0);
    EXPECT_EQ(full.find("more row(s) dropped"), std::string::npos);
    EXPECT_NE(full.find("0x220"), std::string::npos);

    // HTML renders the footer as an emphasized note after the table.
    std::string html =
        sweep::renderReport(records, ReportFormat::Html, 2);
    EXPECT_NE(html.find("<p><em>1 more row(s) dropped; raise --top "
                        "to see them.</em></p>"),
              std::string::npos) << html;
}

TEST(Report, RendersDepProfileFiles)
{
    obs::DepProfile prof("proc", "129.compress NAS/NAV W128");
    prof.noteLoadExec(0x100, true);
    prof.noteLoadCommit(0x100);
    prof.noteStoreCommit(0x200);
    prof.noteViolation(0x200, 0x100, 5, true);
    prof.noteSyncWait(0x100, 0x200, 9);
    prof.noteMdptAlloc(0x100);
    prof.noteMdptSample(1000, 2, 0.75);

    std::vector<std::string> lines;
    prof.serialize(lines);
    mdp::DepProfileFile file;
    ASSERT_TRUE(file.parseLines(lines));

    std::string md =
        sweep::renderDepProfile(file, ReportFormat::Markdown);
    EXPECT_NE(md.find("cwsim dependence profile"), std::string::npos);
    EXPECT_NE(md.find("1 validated run block(s)."), std::string::npos)
        << md;
    EXPECT_NE(md.find("## Run: 129.compress NAS/NAV W128 (proc)"),
              std::string::npos) << md;
    // The edge row carries overlap kinds and the distance histogram.
    EXPECT_NE(md.find("| 0x200 | 0x100 | 1 | 1 | 1 | 0 |"),
              std::string::npos) << md;
    EXPECT_NE(md.find("4-7:1"), std::string::npos) << md;
    EXPECT_NE(md.find("8-15:1"), std::string::npos) << md;
    EXPECT_NE(md.find("0.750"), std::string::npos) << md;

    std::string html = sweep::renderDepProfile(file, ReportFormat::Html);
    EXPECT_NE(html.find("<table>"), std::string::npos);
    EXPECT_NE(html.find("<td>0x200</td>"), std::string::npos);

    // An empty profile still renders, saying so.
    mdp::DepProfileFile empty;
    std::string none =
        sweep::renderDepProfile(empty, ReportFormat::Markdown);
    EXPECT_NE(none.find("No validated run blocks."), std::string::npos)
        << none;
}

} // anonymous namespace
} // namespace cwsim
