/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, the
 * statistics package, the table formatter and configuration presets.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/config_parse.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "sweep/jsonl.hh"

namespace cwsim
{
namespace
{

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(10); });
    eq.schedule(5, [&] { order.push_back(5); });
    eq.schedule(7, [&] { order.push_back(7); });
    eq.runUntil(20);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 5);
    EXPECT_EQ(order[1], 7);
    EXPECT_EQ(order[2], 10);
    EXPECT_EQ(eq.curTick(), 20u);
}

TEST(EventQueueTest, SameTickUsesPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3, [&] { order.push_back(1); }, 1);
    eq.schedule(3, [&] { order.push_back(0); }, 0);
    eq.schedule(3, [&] { order.push_back(2); }, 1);
    eq.runUntil(3);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(6, [&] { ++fired; });
    eq.runUntil(5);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.size(), 1u);
    eq.runUntil(6);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EventsMayScheduleEvents)
{
    EventQueue eq;
    std::vector<Tick> fired_at;
    eq.schedule(2, [&] {
        fired_at.push_back(eq.curTick());
        eq.scheduleIn(3, [&] { fired_at.push_back(eq.curTick()); });
        eq.scheduleIn(0, [&] { fired_at.push_back(eq.curTick()); });
    });
    eq.runUntil(10);
    ASSERT_EQ(fired_at.size(), 3u);
    EXPECT_EQ(fired_at[0], 2u);
    EXPECT_EQ(fired_at[1], 2u); // zero-delay event fires at same tick
    EXPECT_EQ(fired_at[2], 5u);
}

TEST(EventQueueTest, DrainRunsEverything)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1000, [&] { ++fired; });
    eq.schedule(2000, [&] { ++fired; });
    eq.drain();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 2000u);
}

TEST(EventQueueTest, ResetClearsCounters)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    eq.runUntil(1);
    EXPECT_EQ(eq.scheduledCount(), 2u);
    EXPECT_EQ(eq.firedCount(), 1u);

    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    // A reused queue must start its statistics from zero, not bleed
    // counts from the previous run.
    EXPECT_EQ(eq.scheduledCount(), 0u);
    EXPECT_EQ(eq.firedCount(), 0u);

    eq.schedule(3, [&] { ++fired; });
    eq.runUntil(3);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.scheduledCount(), 1u);
    EXPECT_EQ(eq.firedCount(), 1u);
}

TEST(EventQueueTest, FarFutureEventsInterleaveWithNearOnes)
{
    // Events beyond the calendar ring's horizon take the far-heap lane;
    // they must still fire in global (tick, priority, insertion) order.
    EventQueue eq;
    std::vector<Tick> fired_at;
    auto rec = [&] { fired_at.push_back(eq.curTick()); };
    eq.schedule(5000, rec);
    eq.schedule(3, rec);
    eq.schedule(1000, rec);
    eq.schedule(999, rec);
    eq.runUntil(10000);
    ASSERT_EQ(fired_at.size(), 4u);
    EXPECT_EQ(fired_at[0], 3u);
    EXPECT_EQ(fired_at[1], 999u);
    EXPECT_EQ(fired_at[2], 1000u);
    EXPECT_EQ(fired_at[3], 5000u);
    EXPECT_EQ(eq.firedCount(), 4u);
}

TEST(EventQueueTest, SameTickOrderSpansBothLanes)
{
    // Two events at the same tick, one scheduled while the tick was
    // beyond the horizon (far lane) and one scheduled later from
    // nearby (ring lane): priority then insertion order must still
    // decide, exactly as with the single heap.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(400, [&] { order.push_back(1); }, 1); // far at schedule time
    eq.schedule(200, [&] {
        eq.schedule(400, [&] { order.push_back(0); }, 0); // near lane
        eq.schedule(400, [&] { order.push_back(2); }, 1);
    });
    eq.runUntil(400);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
}

TEST(StatsTest, ScalarAccumulates)
{
    stats::Scalar s;
    ++s;
    s += 9;
    EXPECT_EQ(s.value(), 10u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(StatsTest, AverageMean)
{
    stats::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(StatsTest, DistributionBuckets)
{
    stats::Distribution d;
    d.init(0, 100, 10);
    d.sample(-5);   // underflow
    d.sample(0);    // bucket 0
    d.sample(9.9);  // bucket 0
    d.sample(55);   // bucket 5
    d.sample(100);  // overflow (exclusive upper bound)
    d.sample(250);  // overflow
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 2u);
    EXPECT_EQ(d.bucketCount(0), 2u);
    EXPECT_EQ(d.bucketCount(5), 1u);
    EXPECT_EQ(d.count(), 6u);
    EXPECT_DOUBLE_EQ(d.minSample(), -5);
    EXPECT_DOUBLE_EQ(d.maxSample(), 250);
}

TEST(StatsTest, GroupLookupAndDump)
{
    stats::StatGroup root("cpu");
    stats::Scalar commits;
    stats::Average ipc;
    commits += 7;
    ipc.sample(1.5);
    root.addScalar("commits", &commits, "committed instructions");
    root.addAverage("ipc", &ipc);
    EXPECT_EQ(root.scalarValue("commits"), 7u);
    EXPECT_DOUBLE_EQ(root.averageMean("ipc"), 1.5);
    EXPECT_TRUE(root.hasScalar("commits"));
    EXPECT_FALSE(root.hasScalar("nonesuch"));

    std::ostringstream oss;
    root.dump(oss);
    EXPECT_NE(oss.str().find("cpu.commits"), std::string::npos);
    EXPECT_NE(oss.str().find("committed instructions"), std::string::npos);
}

TEST(StatsTest, NestedGroupNames)
{
    stats::StatGroup root("system");
    stats::StatGroup child("l1d", &root);
    stats::Scalar hits;
    child.addScalar("hits", &hits);
    EXPECT_EQ(child.fullName(), "system.l1d");
    std::ostringstream oss;
    root.dump(oss);
    EXPECT_NE(oss.str().find("system.l1d.hits"), std::string::npos);
}

TEST(StatsTest, DistributionEdgeCases)
{
    stats::Distribution d;
    d.init(10, 20, 1); // single bucket [10, 20)
    EXPECT_EQ(d.numBuckets(), 1u);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.sum(), 0.0);

    d.sample(9.999); // just under: underflow
    d.sample(10);    // inclusive lower bound
    d.sample(19.99); // still in the bucket
    d.sample(20);    // exclusive upper bound: overflow
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.bucketCount(0), 2u);
    EXPECT_EQ(d.count(), 4u);
    // Under/overflow samples still shape min/max/sum/mean.
    EXPECT_DOUBLE_EQ(d.minSample(), 9.999);
    EXPECT_DOUBLE_EQ(d.maxSample(), 20.0);
    EXPECT_DOUBLE_EQ(d.sum(), 9.999 + 10 + 19.99 + 20);
    EXPECT_DOUBLE_EQ(d.mean(), d.sum() / 4);

    // Reset clears everything, including min/max.
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.underflows(), 0u);
    EXPECT_EQ(d.overflows(), 0u);
    EXPECT_EQ(d.bucketCount(0), 0u);
    EXPECT_DOUBLE_EQ(d.sum(), 0.0);
    d.sample(15);
    EXPECT_DOUBLE_EQ(d.minSample(), 15.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 15.0);
    EXPECT_EQ(d.bucketCount(0), 1u);
}

TEST(StatsTest, GroupHasAndFindByFullyQualifiedName)
{
    stats::StatGroup root("proc");
    stats::StatGroup child("mdpt", &root);
    stats::Scalar commits;
    stats::Average delay;
    stats::Distribution occ;
    stats::Scalar allocs;
    commits += 11;
    delay.sample(4);
    occ.init(0, 128, 8);
    occ.sample(64);
    allocs += 3;
    root.addScalar("commits", &commits);
    root.addAverage("loadIssueDelay", &delay);
    root.addDistribution("windowOccupancy", &occ);
    child.addScalar("allocations", &allocs);

    EXPECT_TRUE(root.hasAverage("loadIssueDelay"));
    EXPECT_FALSE(root.hasAverage("commits")); // wrong kind
    EXPECT_TRUE(root.hasDistribution("windowOccupancy"));
    EXPECT_FALSE(root.hasDistribution("nonesuch"));

    ASSERT_NE(root.findScalar("proc.commits"), nullptr);
    EXPECT_EQ(root.findScalar("proc.commits")->value(), 11u);
    ASSERT_NE(root.findAverage("proc.loadIssueDelay"), nullptr);
    ASSERT_NE(root.findDistribution("proc.windowOccupancy"), nullptr);
    // Through a child group.
    ASSERT_NE(root.findScalar("proc.mdpt.allocations"), nullptr);
    EXPECT_EQ(root.findScalar("proc.mdpt.allocations")->value(), 3u);
    // Probing misses returns nullptr, no panic.
    EXPECT_EQ(root.findScalar("proc.nonesuch"), nullptr);
    EXPECT_EQ(root.findScalar("commits"), nullptr); // must be FQ
    EXPECT_EQ(root.findScalar("other.commits"), nullptr);
    EXPECT_EQ(root.findAverage("proc.commits"), nullptr); // wrong kind
}

TEST(StatsTest, JsonExportRoundTripsThroughFlatJsonParser)
{
    stats::StatGroup root("proc");
    stats::StatGroup child("mdpt", &root);
    stats::Scalar commits;
    stats::Average delay;
    stats::Distribution occ;
    stats::Scalar allocs;
    commits += 123;
    delay.sample(2);
    delay.sample(4);
    occ.init(0, 4, 2);
    occ.sample(-1); // underflow
    occ.sample(1);  // bucket 0
    occ.sample(3);  // bucket 1
    occ.sample(9);  // overflow
    allocs += 7;
    root.addScalar("commits", &commits);
    root.addAverage("loadIssueDelay", &delay);
    root.addDistribution("windowOccupancy", &occ);
    child.addScalar("allocations", &allocs);

    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(root.jsonString(), fields));
    EXPECT_EQ(fields.at("proc.commits"), "123");
    EXPECT_EQ(fields.at("proc.mdpt.allocations"), "7");
    EXPECT_DOUBLE_EQ(std::stod(fields.at("proc.loadIssueDelay.mean")),
                     3.0);
    EXPECT_EQ(fields.at("proc.loadIssueDelay.count"), "2");
    EXPECT_DOUBLE_EQ(
        std::stod(fields.at("proc.windowOccupancy.mean")), 3.0);
    EXPECT_EQ(fields.at("proc.windowOccupancy.count"), "4");
    EXPECT_DOUBLE_EQ(std::stod(fields.at("proc.windowOccupancy.min")),
                     -1.0);
    EXPECT_DOUBLE_EQ(std::stod(fields.at("proc.windowOccupancy.max")),
                     9.0);
    EXPECT_EQ(fields.at("proc.windowOccupancy.underflow"), "1");
    EXPECT_EQ(fields.at("proc.windowOccupancy.overflow"), "1");
    EXPECT_EQ(fields.at("proc.windowOccupancy.bucket0"), "1");
    EXPECT_EQ(fields.at("proc.windowOccupancy.bucket1"), "1");
}

TEST(StatsTest, HexPcKeySegmentsSurviveJsonExport)
{
    // The dependence observatory registers per-PC counters whose key
    // segments embed hex PCs ("depprof.load_0x1a2b.execs"). Those keys
    // must survive the flat-JSON export byte-exact at the edges: PC 0,
    // an all-ones 64-bit PC, and mixed-case hex digits.
    stats::StatGroup root("proc");
    stats::StatGroup depprof("depprof", &root);
    stats::Scalar zero, big, mixed;
    zero += 1;
    big += 2;
    mixed += 3;
    depprof.addScalar("load_0x0.execs", &zero);
    depprof.addScalar("load_0xffffffffffffffff.violations", &big);
    depprof.addScalar("store_0xdeadBEEF.commits", &mixed);

    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(root.jsonString(), fields));
    EXPECT_EQ(fields.at("proc.depprof.load_0x0.execs"), "1");
    EXPECT_EQ(
        fields.at("proc.depprof.load_0xffffffffffffffff.violations"),
        "2");
    EXPECT_EQ(fields.at("proc.depprof.store_0xdeadBEEF.commits"), "3");
    // And the find API resolves them like any other stat.
    ASSERT_NE(root.findScalar("proc.depprof.load_0x0.execs"), nullptr);
    EXPECT_EQ(root.findScalar("proc.depprof.load_0x0.execs")->value(),
              1u);
}

TEST(TableTest, AlignsColumns)
{
    TextTable t;
    t.setHeader({"Program", "IPC"});
    t.addRow({"099.go", "1.23"});
    t.addRow({"147.vortex", "2.5"});
    std::string s = t.toString();
    EXPECT_NE(s.find("| Program"), std::string::npos);
    EXPECT_NE(s.find("099.go"), std::string::npos);
    // Right-aligned numeric column.
    EXPECT_NE(s.find(" 1.23 |"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TableTest, SeparatorRows)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"3", "4"});
    std::string s = t.toString();
    // header sep + top + bottom + explicit = at least 4 separator lines
    size_t count = 0;
    for (size_t pos = s.find("+--"); pos != std::string::npos;
         pos = s.find("+--", pos + 1)) {
        ++count;
    }
    EXPECT_GE(count, 4u);
}

TEST(ConfigTest, W128Defaults)
{
    SimConfig cfg = makeW128Config();
    EXPECT_EQ(cfg.core.windowSize, 128u);
    EXPECT_EQ(cfg.core.issueWidth, 8u);
    EXPECT_EQ(cfg.core.memPorts, 4u);
    EXPECT_EQ(cfg.core.fuCopies, 8u);
    EXPECT_EQ(cfg.mem.dcache.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.mem.icache.sizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.mem.l2.sizeBytes, 4u * 1024 * 1024);
    EXPECT_EQ(cfg.bpred.gselectHistoryBits, 5u);
}

TEST(ConfigTest, W64Derivation)
{
    // Figure 1: "derived from Table 2, by reducing issue width to 4,
    // load/store ports to 2, and all functional units to 2."
    SimConfig cfg = makeW64Config();
    EXPECT_EQ(cfg.core.windowSize, 64u);
    EXPECT_EQ(cfg.core.issueWidth, 4u);
    EXPECT_EQ(cfg.core.memPorts, 2u);
    EXPECT_EQ(cfg.core.fuCopies, 2u);
}

TEST(ConfigTest, PolicyNames)
{
    EXPECT_EQ(configName(LsqModel::NAS, SpecPolicy::SpecSync),
              "NAS/SYNC");
    EXPECT_EQ(configName(LsqModel::AS, SpecPolicy::Naive), "AS/NAV");
    EXPECT_EQ(configName(LsqModel::NAS, SpecPolicy::Oracle),
              "NAS/ORACLE");
    EXPECT_EQ(configName(LsqModel::AS, SpecPolicy::No), "AS/NO");
    EXPECT_EQ(configName(LsqModel::NAS, SpecPolicy::Selective),
              "NAS/SEL");
    EXPECT_EQ(configName(LsqModel::NAS, SpecPolicy::StoreBarrier),
              "NAS/STORE");
}

TEST(ConfigTest, WithPolicyApplies)
{
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::AS,
                               SpecPolicy::Naive, 2);
    EXPECT_EQ(cfg.mdp.lsqModel, LsqModel::AS);
    EXPECT_EQ(cfg.mdp.policy, SpecPolicy::Naive);
    EXPECT_EQ(cfg.mdp.asLatency, 2u);
    EXPECT_EQ(cfg.name(), "AS/NAV");
}


// ---------------------------------------------------------------------
// Config parsing.
// ---------------------------------------------------------------------

TEST(ConfigParseTest, AppliesSingleOptions)
{
    SimConfig cfg;
    applyConfigOption(cfg, "core.windowSize=256");
    applyConfigOption(cfg, "mdp.policy = SYNC");
    applyConfigOption(cfg, "mdp.lsqModel=NAS");
    applyConfigOption(cfg, "mdp.recovery=selective");
    applyConfigOption(cfg, "maxInsts=12345");
    EXPECT_EQ(cfg.core.windowSize, 256u);
    EXPECT_EQ(cfg.mdp.policy, SpecPolicy::SpecSync);
    EXPECT_EQ(cfg.mdp.recovery, RecoveryModel::Selective);
    EXPECT_EQ(cfg.maxInsts, 12345u);
}

TEST(ConfigParseTest, ParsesTextWithCommentsAndBlanks)
{
    SimConfig cfg = parseConfigText(R"(
        # a comment
        core.issueWidth = 4

        mem.l2AccessLatency = 12   # trailing comment
        mdp.policy = ORACLE
        mem.dcache.sizeBytes = 0x10000
    )");
    EXPECT_EQ(cfg.core.issueWidth, 4u);
    EXPECT_EQ(cfg.mem.l2AccessLatency, 12u);
    EXPECT_EQ(cfg.mdp.policy, SpecPolicy::Oracle);
    EXPECT_EQ(cfg.mem.dcache.sizeBytes, 0x10000u);
}

TEST(ConfigParseTest, BaseConfigIsPreserved)
{
    SimConfig base = makeW64Config();
    SimConfig cfg = parseConfigText("mdp.policy = NAV\n", base);
    EXPECT_EQ(cfg.core.windowSize, 64u); // untouched
    EXPECT_EQ(cfg.mdp.policy, SpecPolicy::Naive);
}

TEST(ConfigParseTest, KeyListingNonEmpty)
{
    auto keys = configKeys();
    EXPECT_GT(keys.size(), 25u);
    bool found = false;
    for (const auto &k : keys)
        found = found || k == "mdp.policy";
    EXPECT_TRUE(found);
}

TEST(ConfigParseDeathTest, UnknownKey)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigOption(cfg, "nonsense.key=1"),
                ::testing::ExitedWithCode(1), "unknown key");
}

TEST(ConfigParseDeathTest, BadNumber)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigOption(cfg, "core.windowSize=grape"),
                ::testing::ExitedWithCode(1), "bad number");
}

TEST(ConfigParseDeathTest, MissingEquals)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigOption(cfg, "core.windowSize"),
                ::testing::ExitedWithCode(1), "key=value");
}

TEST(ConfigParseDeathTest, BadPolicy)
{
    SimConfig cfg;
    EXPECT_EXIT(applyConfigOption(cfg, "mdp.policy=MAGIC"),
                ::testing::ExitedWithCode(1), "bad policy");
}

} // anonymous namespace
} // namespace cwsim
