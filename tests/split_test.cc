/**
 * @file
 * Tests for the split-window model, including the Section 3.7 claim:
 * under a split window, a 0-cycle address-based scheduler with naive
 * speculation can NOT avoid memory dependence miss-speculations,
 * whereas the continuous configuration of the same engine can.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "mdp/oracle.hh"
#include "split/split_window.hh"
#include "workloads/workload.hh"

namespace cwsim
{
namespace
{

/**
 * The paper's Figure 7 loop, unrolled: iteration i stores a[i] (behind
 * a multiply chain) and iteration i+1 reloads it. Addresses come from a
 * base register set before the loop, so — as in a Multiscalar task,
 * where each unit knows its iteration range — a later unit can compute
 * a load address without waiting for earlier units. The ONLY
 * cross-iteration dependence is the memory recurrence, plus independent
 * side loads that an aggressive machine can hoist.
 */
Program
figure7Loop(int n = 400)
{
    ProgramBuilder b;
    Addr a = b.dataAlloc(4 * (n + 2));
    Addr side = b.dataAlloc(4 * (2 * n + 2));
    b.dataW32(a, 3);
    b.la(ir(1), a);
    b.la(ir(10), side);
    for (int i = 0; i < n; ++i) {
        int32_t off = 4 * i;
        b.lw(ir(3), ir(1), off);          // load a[i-1]
        b.mul(ir(4), ir(3), ir(3));       // slow data
        b.andi(ir(4), ir(4), 1023);
        b.sw(ir(4), ir(1), off + 4);      // store a[i]
        b.lw(ir(5), ir(10), off);         // independent loads
        b.lw(ir(6), ir(10), off + 4);
        b.add(ir(7), ir(5), ir(6));
    }
    b.halt();
    return b.build();
}

/**
 * Independent loads behind scatter stores whose ADDRESSES trail loads:
 * everything is ambiguous until each store posts, but no dependence is
 * ever real. No-speculation machines crawl; naive speculation flies.
 */
Program
ambiguousStream(int n = 300)
{
    ProgramBuilder b;
    Addr side = b.dataAlloc(4 * (2 * n + 4));
    Addr scatter = b.dataAlloc(4 * 1024);
    b.la(ir(10), side);
    b.la(ir(11), scatter);
    for (int i = 0; i < n; ++i) {
        int32_t off = 4 * i;
        b.lw(ir(8), ir(10), off + 8);     // index feed for the store
        b.mul(ir(8), ir(8), ir(8));       // slow the address down
        b.andi(ir(8), ir(8), 1020);
        b.add(ir(9), ir(11), ir(8));
        b.sw(ir(8), ir(9), 0);            // late-address scatter store
        b.lw(ir(5), ir(10), off);         // independent loads
        b.lw(ir(6), ir(10), off + 4);
        b.add(ir(7), ir(5), ir(6));
    }
    b.halt();
    return b.build();
}

/**
 * Figure 7's recurrence as an outer loop over an 8-iteration unrolled
 * body: the induction update sits at the TOP of the body (software-
 * pipelined), so later units can compute load addresses early, while
 * the static (load, store) pairs REPEAT across outer iterations — the
 * shape speculation/synchronization needs to learn.
 */
Program
rolledFigure7Loop(int outer = 120)
{
    constexpr int unroll = 8;
    ProgramBuilder b;
    Addr a = b.dataAlloc(4 * (outer * unroll + 2));
    Addr side = b.dataAlloc(4 * (2 * unroll + 2));
    b.dataW32(a, 3);
    b.la(ir(1), a);
    b.la(ir(10), side);
    b.li32(ir(2), static_cast<uint32_t>(outer));
    auto loop = b.hereLabel();
    b.addi(ir(1), ir(1), 4 * unroll); // induction first
    for (int u = 0; u < unroll; ++u) {
        int32_t off = 4 * (u - unroll); // relative to advanced base
        b.lw(ir(3), ir(1), off);        // load a[i-1]
        b.mul(ir(4), ir(3), ir(3));     // slow data
        b.andi(ir(4), ir(4), 1023);
        b.sw(ir(4), ir(1), off + 4);    // store a[i]
        b.lw(ir(5), ir(10), 4 * u);     // independent loads
        b.add(ir(7), ir(5), ir(4));
    }
    b.addi(ir(2), ir(2), -1);
    b.bne(ir(2), reg_zero, loop);
    b.halt();
    return b.build();
}

std::vector<TraceEntry>
traceOf(const Program &prog)
{
    PrepassOptions opts;
    opts.recordTrace = true;
    PrepassResult pre = runPrepass(prog, opts);
    EXPECT_TRUE(pre.halted);
    return pre.trace;
}

TEST(SplitWindowTest, RunsTraceToCompletion)
{
    auto trace = traceOf(figure7Loop());
    SplitConfig cfg;
    SplitWindowSim sim(cfg, trace);
    uint64_t cycles = sim.run();
    EXPECT_GT(cycles, 0u);
    EXPECT_EQ(sim.committed(), trace.size());
}

TEST(SplitWindowTest, ContinuousAsNavAvoidsMisspeculation)
{
    // Continuous window + 0-cycle AS + naive speculation: by the time
    // a dependent load computes its address, all older store addresses
    // are posted (Figure 7b).
    auto trace = traceOf(figure7Loop());
    SplitConfig cfg = SplitConfig::continuous();
    cfg.lsqModel = LsqModel::AS;
    cfg.policy = SpecPolicy::Naive;
    cfg.asLatency = 0;
    SplitWindowSim sim(cfg, trace);
    sim.run();
    EXPECT_EQ(sim.violations(), 0u);
}

TEST(SplitWindowTest, SplitAsNavStillMisspeculates)
{
    // Split window: iteration i+1's load is fetched (in a later unit)
    // before iteration i's store, so even a 0-cycle address-based
    // scheduler cannot save it (Figure 7c).
    auto trace = traceOf(figure7Loop());
    SplitConfig cfg;
    cfg.numUnits = 4;
    cfg.chunkSize = 32;
    cfg.lsqModel = LsqModel::AS;
    cfg.policy = SpecPolicy::Naive;
    cfg.asLatency = 0;
    SplitWindowSim sim(cfg, trace);
    sim.run();
    EXPECT_GT(sim.violations(), 10u)
        << "the split window must expose the recurrence";
    EXPECT_EQ(sim.committed(), trace.size());
}

TEST(SplitWindowTest, NoSpeculationNeverViolates)
{
    auto trace = traceOf(figure7Loop());
    for (LsqModel model : {LsqModel::NAS, LsqModel::AS}) {
        SplitConfig cfg;
        cfg.lsqModel = model;
        cfg.policy = SpecPolicy::No;
        SplitWindowSim sim(cfg, trace);
        sim.run();
        EXPECT_EQ(sim.violations(), 0u) << toString(model);
    }
}

TEST(SplitWindowTest, ContinuousSpeculationOutperformsNoSpeculation)
{
    // Under the continuous window, AS/NAV speculation is pure win: the
    // independent loads bypass ambiguous stores and no dependence is
    // ever violated.
    auto trace = traceOf(ambiguousStream());
    SplitConfig no_cfg = SplitConfig::continuous();
    no_cfg.policy = SpecPolicy::No;
    SplitWindowSim no_sim(no_cfg, trace);
    no_sim.run();

    SplitConfig nav_cfg = SplitConfig::continuous();
    nav_cfg.policy = SpecPolicy::Naive;
    SplitWindowSim nav_sim(nav_cfg, trace);
    nav_sim.run();

    EXPECT_LT(nav_sim.cycles(), no_sim.cycles());
    EXPECT_EQ(nav_sim.violations(), 0u);
}

TEST(SplitWindowTest, NaiveSpeculationPenaltyHurtsSplitWindow)
{
    // The section 3.7 punchline from the other side: under the split
    // window naive speculation keeps miss-speculating on the
    // recurrence, so (unlike the continuous machine) AS/NAV is NOT an
    // adequate solution there — advanced dependence prediction is
    // needed.
    auto trace = traceOf(figure7Loop());
    SplitConfig nav_cfg;
    nav_cfg.policy = SpecPolicy::Naive;
    SplitWindowSim nav_sim(nav_cfg, trace);
    nav_sim.run();
    EXPECT_GT(nav_sim.violations(), 10u);

    SplitConfig cont_cfg = SplitConfig::continuous();
    cont_cfg.policy = SpecPolicy::Naive;
    SplitWindowSim cont_sim(cont_cfg, trace);
    cont_sim.run();
    EXPECT_EQ(cont_sim.violations(), 0u);
}

TEST(SplitWindowTest, MoreUnitsMoreParallelFetch)
{
    // With independent per-unit fetch, total fetch bandwidth grows with
    // units; an embarrassingly parallel trace must speed up.
    ProgramBuilder b;
    Addr arr = b.dataAlloc(4 * 4096);
    b.la(ir(1), arr);
    b.addi(ir(2), reg_zero, 1000);
    auto loop = b.hereLabel();
    b.lw(ir(3), ir(1), 0);
    b.addi(ir(3), ir(3), 1);
    b.addi(ir(1), ir(1), 4);
    b.addi(ir(2), ir(2), -1);
    b.bne(ir(2), reg_zero, loop);
    b.halt();
    auto trace = traceOf(b.build());

    SplitConfig one;
    one.numUnits = 1;
    one.chunkSize = 32;
    SplitWindowSim sim_one(one, trace);
    sim_one.run();

    SplitConfig four;
    four.numUnits = 4;
    four.chunkSize = 32;
    SplitWindowSim sim_four(four, trace);
    sim_four.run();

    EXPECT_LT(sim_four.cycles(), sim_one.cycles());
}

TEST(SplitWindowTest, WorkloadTracesRunUnderAllPolicies)
{
    Workload w = workloads::build("129.compress", 15'000);
    PrepassOptions opts;
    opts.recordTrace = true;
    PrepassResult pre = runPrepass(w.program, opts);
    for (LsqModel model : {LsqModel::NAS, LsqModel::AS}) {
        for (SpecPolicy policy :
             {SpecPolicy::No, SpecPolicy::Naive}) {
            SplitConfig cfg;
            cfg.lsqModel = model;
            cfg.policy = policy;
            SplitWindowSim sim(cfg, pre.trace);
            sim.run();
            EXPECT_EQ(sim.committed(), pre.trace.size())
                << configName(model, policy);
        }
    }
}

TEST(SplitWindowTest, AsLatencyDegradesPerformance)
{
    auto trace = traceOf(figure7Loop());
    uint64_t prev = 0;
    for (Cycles lat : {0u, 2u}) {
        SplitConfig cfg;
        cfg.lsqModel = LsqModel::AS;
        cfg.policy = SpecPolicy::Naive;
        cfg.asLatency = lat;
        SplitWindowSim sim(cfg, trace);
        sim.run();
        if (lat > 0)
            EXPECT_GE(sim.cycles(), prev);
        prev = sim.cycles();
    }
}


TEST(SplitWindowTest, SyncRescuesTheSplitWindow)
{
    // The paper's prior work [19] in one test: the split window cannot
    // be saved by address-based scheduling (see above), but
    // speculation/synchronization can — after the first few pairings
    // the violating (load, store) pair synchronizes and
    // miss-speculation collapses, recovering performance.
    auto trace = traceOf(rolledFigure7Loop());

    // One unrolled body per sub-window: the cross-body recurrence pair
    // always spans units.
    SplitConfig nav_cfg;
    nav_cfg.chunkSize = 51; // 8 slots * 6 insts + 3 loop insts
    nav_cfg.policy = SpecPolicy::Naive;
    SplitWindowSim nav_sim(nav_cfg, trace);
    nav_sim.run();
    EXPECT_GT(nav_sim.violations(), 20u)
        << "the rolled recurrence must miss-speculate under split NAV";

    SplitConfig sync_cfg = nav_cfg;
    sync_cfg.policy = SpecPolicy::SpecSync;
    SplitWindowSim sync_sim(sync_cfg, trace);
    sync_sim.run();

    EXPECT_LT(sync_sim.violations(), nav_sim.violations() / 4);
    EXPECT_LE(sync_sim.cycles(), nav_sim.cycles());
    EXPECT_EQ(sync_sim.committed(), trace.size());
}


TEST(SplitWindowTest, InterUnitLatencySlowsCrossUnitChains)
{
    // A serial register chain crossing unit boundaries pays the
    // forwarding latency; raising it must not speed anything up.
    auto trace = traceOf(figure7Loop(200));
    uint64_t prev = 0;
    for (Cycles lat : {0u, 1u, 4u}) {
        SplitConfig cfg;
        cfg.interUnitLatency = lat;
        cfg.policy = SpecPolicy::No;
        SplitWindowSim sim(cfg, trace);
        sim.run();
        EXPECT_GE(sim.cycles() + 1, prev) << "latency " << lat;
        prev = sim.cycles();
    }
}

TEST(SplitWindowTest, EmptyTraceIsFine)
{
    std::vector<TraceEntry> empty;
    SplitConfig cfg;
    SplitWindowSim sim(cfg, empty);
    EXPECT_EQ(sim.run(), 0u);
    EXPECT_EQ(sim.committed(), 0u);
}

} // anonymous namespace
} // namespace cwsim
