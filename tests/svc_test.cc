/**
 * @file
 * Tests for the cwsimd service subsystem (src/svc): the wire-protocol
 * helpers, sweep-spec parsing (including fingerprint parity with the
 * bench binaries), the multi-tenant scheduler's dedupe / quota /
 * fairness / orphaning rules, and — through a real server on a real
 * Unix socket — the protocol edge cases the daemon must survive:
 * malformed and oversized requests, clients vanishing mid-sweep, two
 * tenants asking for the same work, and a crash-storm of injected
 * host faults that must be contained, classified, and answered
 * without the server ever dying.
 */

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/harness.hh"
#include "svc/client.hh"
#include "svc/protocol.hh"
#include "svc/scheduler.hh"
#include "svc/server.hh"
#include "svc/spec.hh"
#include "sweep/jsonl.hh"
#include "sweep/run_cache.hh"

namespace cwsim
{
namespace
{

using harness::FailKind;
using harness::RunResult;
using svc::Client;
using svc::RunRef;
using svc::Scheduler;
using svc::SchedulerLimits;
using svc::Server;
using svc::ServerOptions;
using svc::SweepSpec;

struct ScratchDir
{
    explicit ScratchDir(const std::string &tag)
        : path(tag + "." + std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~ScratchDir() { std::filesystem::remove_all(path); }

    std::string path;
};

// ---------------------------------------------------------------------
// Protocol helpers
// ---------------------------------------------------------------------

TEST(SvcProtocol, TakeLineSplitsBufferedLinesAndStripsCr)
{
    std::string buf = "first\r\nsecond\npar", line;
    ASSERT_TRUE(svc::takeLine(buf, line));
    EXPECT_EQ(line, "first");
    ASSERT_TRUE(svc::takeLine(buf, line));
    EXPECT_EQ(line, "second");
    EXPECT_FALSE(svc::takeLine(buf, line)) << "no complete line yet";
    EXPECT_EQ(buf, "par");
    buf += "tial\n";
    ASSERT_TRUE(svc::takeLine(buf, line));
    EXPECT_EQ(line, "partial");
    EXPECT_TRUE(buf.empty());
}

TEST(SvcProtocol, MergeJsonSplicesTwoFlatObjects)
{
    EXPECT_EQ(svc::mergeJson("{\"a\":1}", "{\"b\":\"x\",\"c\":2}"),
              "{\"a\":1,\"b\":\"x\",\"c\":2}");
    // One empty side passes the other through untouched.
    EXPECT_EQ(svc::mergeJson("{\"a\":1}", "{}"), "{\"a\":1}");
    EXPECT_EQ(svc::mergeJson("{}", "{\"a\":1}"), "{\"a\":1}");
}

// ---------------------------------------------------------------------
// Sweep specs
// ---------------------------------------------------------------------

TEST(SvcSpec, Fig2PresetRebuildsTheBenchFingerprints)
{
    SweepSpec spec;
    std::string err;
    std::map<std::string, std::string> req{
        {"cmd", "submit"}, {"id", "s"},      {"preset", "fig2"},
        {"scale", "4000"}, {"filter", "129"}};
    ASSERT_TRUE(svc::parseSweepSpec(req, spec, err)) << err;
    ASSERT_EQ(spec.workloads.size(), 1u);
    EXPECT_EQ(spec.workloads[0], "129.compress");
    ASSERT_EQ(spec.configs.size(), 3u);
    EXPECT_EQ(spec.scale, 4000u);

    // The whole point of reconstructive specs: the daemon must derive
    // the SAME fingerprints the bench binary computes, or the shared
    // cache never hits across the two front ends.
    const SpecPolicy policies[] = {SpecPolicy::No, SpecPolicy::Oracle,
                                   SpecPolicy::Naive};
    for (size_t i = 0; i < 3; ++i) {
        SimConfig bench = withPolicy(makeW128Config(), LsqModel::NAS,
                                     policies[i]);
        EXPECT_EQ(
            sweep::fingerprintRun("129.compress", 4000, spec.configs[i]),
            sweep::fingerprintRun("129.compress", 4000, bench))
            << "config " << i;
    }

    // Jobs expand workload-major.
    auto jobs = spec.jobs();
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_EQ(jobs[0].config.name(), spec.configs[0].name());
}

TEST(SvcSpec, RejectsBadRequestsWithoutDying)
{
    SweepSpec spec;
    std::string err;

    EXPECT_FALSE(svc::parseSweepSpec({{"cmd", "submit"}}, spec, err));
    EXPECT_EQ(err, "submit requires an id");

    EXPECT_FALSE(svc::parseSweepSpec(
        {{"id", "s"}, {"preset", "fig9"}}, spec, err));
    EXPECT_NE(err.find("unknown preset"), std::string::npos);

    EXPECT_FALSE(svc::parseSweepSpec(
        {{"id", "s"}, {"scale", "12"}}, spec, err));
    EXPECT_NE(err.find("minimum 1000"), std::string::npos);

    EXPECT_FALSE(svc::parseSweepSpec(
        {{"id", "s"}, {"workloads", "999.nope"}}, spec, err));
    EXPECT_NE(err.find("unknown workload"), std::string::npos);

    // A bogus config key goes through the trapped fatal() path: the
    // parse fails with a message instead of aborting the process.
    EXPECT_FALSE(svc::parseSweepSpec(
        {{"id", "s"}, {"configs", "mdp.noSuchKnob=1"}}, spec, err));
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

sweep::SweepJob
jobFor(const std::string &workload)
{
    return {workload, SimConfig{}};
}

TEST(SvcScheduler, SameFingerprintSharesOneUnit)
{
    Scheduler sched;
    EXPECT_TRUE(sched.admit({1, "a", 0, 1}, 0xfeed, jobFor("w"), 2000, 0));
    EXPECT_FALSE(sched.admit({2, "b", 0, 1}, 0xfeed, jobFor("w"), 2000, 0))
        << "second client attaches, no new unit";
    EXPECT_EQ(sched.queued(), 1u);
    EXPECT_TRUE(sched.hasPending(0xfeed));
    EXPECT_EQ(sched.inflight(1), 1u);
    EXPECT_EQ(sched.inflight(2), 1u);

    svc::RunUnit *unit = sched.next();
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(sched.running(), 1u);
    std::vector<RunRef> refs = sched.complete(unit->key);
    ASSERT_EQ(refs.size(), 2u) << "both subscribers notified";
    EXPECT_EQ(refs[0].client, 1u);
    EXPECT_EQ(refs[1].client, 2u);
    EXPECT_FALSE(sched.hasPending(0xfeed));
}

TEST(SvcScheduler, AdmissionControlBoundsQueueAndClient)
{
    SchedulerLimits limits;
    limits.maxQueued = 2;
    limits.maxClientInflight = 3;
    Scheduler sched(limits);
    std::string reason;

    EXPECT_TRUE(sched.canAdmit(1, 2, 2, reason));
    EXPECT_FALSE(sched.canAdmit(1, 3, 3, reason));
    EXPECT_EQ(reason, "queue full");

    // Attach-heavy submits hit the per-client quota even when they
    // create no new units.
    EXPECT_FALSE(sched.canAdmit(1, 0, 4, reason));
    EXPECT_EQ(reason, "quota exceeded");

    sched.admit({1, "a", 0, 2}, 0x1, jobFor("w"), 2000, 0);
    sched.admit({1, "a", 1, 2}, 0x2, jobFor("x"), 2000, 0);
    EXPECT_FALSE(sched.canAdmit(1, 1, 1, reason));
    EXPECT_EQ(reason, "queue full");
    // The quota is per client: client 2 may still attach to the full
    // queue, up to its own cap.
    EXPECT_TRUE(sched.canAdmit(2, 0, 3, reason));
    EXPECT_FALSE(sched.canAdmit(2, 0, 4, reason));
    EXPECT_EQ(reason, "quota exceeded");
}

TEST(SvcScheduler, DispatchRoundRobinsAcrossOwners)
{
    Scheduler sched;
    // Client 1 floods four units before client 2 gets two in.
    for (uint64_t i = 0; i < 4; ++i)
        sched.admit({1, "a", i, 4}, 0x10 + i, jobFor("w"), 2000, 0);
    for (uint64_t i = 0; i < 2; ++i)
        sched.admit({2, "b", i, 2}, 0x20 + i, jobFor("x"), 2000, 0);

    std::vector<uint64_t> order;
    for (svc::RunUnit *u = sched.next(); u; u = sched.next())
        order.push_back(u->fp);
    ASSERT_EQ(order.size(), 6u);
    // Fair interleave while both have work, then the flood drains.
    EXPECT_EQ(order[0], 0x10u);
    EXPECT_EQ(order[1], 0x20u);
    EXPECT_EQ(order[2], 0x11u);
    EXPECT_EQ(order[3], 0x21u);
    EXPECT_EQ(order[4], 0x12u);
    EXPECT_EQ(order[5], 0x13u);
}

TEST(SvcScheduler, DisconnectOrphansOwnedUnitsInsteadOfCancelling)
{
    Scheduler sched;
    sched.admit({1, "a", 0, 2}, 0x1, jobFor("w"), 2000, 0);
    sched.admit({1, "a", 1, 2}, 0x2, jobFor("x"), 2000, 0);
    sched.admit({2, "b", 0, 1}, 0x1, jobFor("w"), 2000, 0); // attach

    sched.dropClient(1);
    EXPECT_EQ(sched.inflight(1), 0u);
    EXPECT_EQ(sched.queued(), 2u)
        << "orphaned units stay admitted: their results belong to the "
           "shared corpus";

    // 0x1 still carries client 2's ref; 0x2 runs for nobody but the
    // cache.
    svc::RunUnit *first = sched.next();
    ASSERT_NE(first, nullptr);
    svc::RunUnit *second = sched.next();
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(sched.next(), nullptr);
    size_t totalRefs = sched.complete(first->key).size() +
                       sched.complete(second->key).size();
    EXPECT_EQ(totalRefs, 1u) << "only client 2's subscription survives";
}

// ---------------------------------------------------------------------
// The server on a real socket
// ---------------------------------------------------------------------

/** A live server on its own thread, plus the scratch state it needs. */
struct LiveServer
{
    explicit LiveServer(const std::string &tag, ServerOptions base = {})
        : dir(tag), opts(std::move(base))
    {
        // sun_path is ~108 bytes; keep sockets in /tmp, not the cwd.
        opts.socketPath =
            "/tmp/" + tag + "." + std::to_string(::getpid()) + ".sock";
        opts.cacheDir = dir.path;
        if (opts.defaultScale == 0)
            opts.defaultScale = 2000;
        server = std::make_unique<Server>(opts);
        std::string err;
        started = server->start(&err);
        EXPECT_TRUE(started) << err;
        if (started)
            thread = std::thread([this] { exitCode = server->run(); });
    }

    ~LiveServer()
    {
        if (thread.joinable()) {
            server->requestStop();
            thread.join();
        }
    }

    /** Drain via requestStop and return run()'s exit code. */
    int
    stopAndJoin()
    {
        server->requestStop();
        thread.join();
        return exitCode;
    }

    Client
    connect()
    {
        Client c;
        std::string err;
        EXPECT_TRUE(c.connectUnix(opts.socketPath, &err)) << err;
        return c;
    }

    ScratchDir dir;
    ServerOptions opts;
    std::unique_ptr<Server> server;
    std::thread thread;
    bool started = false;
    int exitCode = -1;
};

using Event = std::map<std::string, std::string>;

std::string
ev(const Event &event, const char *key)
{
    auto it = event.find(key);
    return it == event.end() ? std::string() : it->second;
}

/** Read events until one of kind @p kind arrives (fails the test on EOF). */
bool
awaitEvent(Client &client, const std::string &kind, Event &out)
{
    std::string err;
    while (client.nextEvent(out, &err)) {
        if (ev(out, "ev") == kind)
            return true;
    }
    ADD_FAILURE() << "connection ended awaiting '" << kind
                  << "' event: " << err;
    return false;
}

ServerOptions
inlineOptions()
{
    ServerOptions opts;
    opts.isolate = false; // deterministic single-thread executor
    return opts;
}

TEST(SvcServer, HandshakeAndLivenessProbes)
{
    LiveServer live("svc_hello", inlineOptions());
    ASSERT_TRUE(live.started);
    Client c = live.connect();
    std::string err;
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"hello\"}", &err)) << err;
    Event event;
    ASSERT_TRUE(awaitEvent(c, "hello", event));
    EXPECT_EQ(ev(event, "proto"),
              std::to_string(svc::protocol_version));
    EXPECT_EQ(ev(event, "scale"), "2000");
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"ping\"}", &err)) << err;
    ASSERT_TRUE(awaitEvent(c, "pong", event));
}

TEST(SvcServer, MalformedLineCostsOneErrorEventNotTheSession)
{
    LiveServer live("svc_malformed", inlineOptions());
    ASSERT_TRUE(live.started);
    Client c = live.connect();
    std::string err;
    ASSERT_TRUE(c.sendLine("this is not json", &err));
    Event event;
    ASSERT_TRUE(awaitEvent(c, "error", event));
    EXPECT_EQ(ev(event, "reason"), "malformed request");
    // The session survives: the next request still answers.
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"ping\"}", &err));
    ASSERT_TRUE(awaitEvent(c, "pong", event));
    // An unknown cmd is also a per-request error, not a disconnect.
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"frobnicate\"}", &err));
    ASSERT_TRUE(awaitEvent(c, "error", event));
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"ping\"}", &err));
    ASSERT_TRUE(awaitEvent(c, "pong", event));
}

TEST(SvcServer, OversizedLineClosesTheSessionButNotTheServer)
{
    LiveServer live("svc_oversized", inlineOptions());
    ASSERT_TRUE(live.started);
    Client bad = live.connect();
    std::string err;
    std::string huge(svc::max_request_line + 64, 'x');
    ASSERT_TRUE(bad.sendLine(huge, &err));
    Event event;
    ASSERT_TRUE(awaitEvent(bad, "error", event));
    EXPECT_EQ(ev(event, "reason"), "request line too long");
    // Then EOF: an unbounded line is a protocol violation.
    EXPECT_FALSE(bad.nextEvent(event, &err));
    EXPECT_TRUE(err.empty()) << "clean close, not an error: " << err;
    // A fresh connection is unaffected.
    Client good = live.connect();
    ASSERT_TRUE(good.sendLine("{\"cmd\":\"ping\"}", &err));
    ASSERT_TRUE(awaitEvent(good, "pong", event));
}

TEST(SvcServer, SubmittedRunMatchesADirectRunnerBitForBit)
{
    LiveServer live("svc_parity", inlineOptions());
    ASSERT_TRUE(live.started);
    Client c = live.connect();
    std::string err;
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"p\","
                           "\"workloads\":\"129.compress\","
                           "\"configs\":\"mdp.lsqModel=NAS,"
                           "mdp.policy=NAV\"}",
                           &err));
    Event event;
    ASSERT_TRUE(awaitEvent(c, "accepted", event));
    EXPECT_EQ(ev(event, "runs"), "1");
    ASSERT_TRUE(awaitEvent(c, "run", event));
    RunResult viaDaemon;
    ASSERT_TRUE(sweep::runRecordParse(event, viaDaemon));

    harness::Runner runner(2000);
    RunResult direct = runner.run(
        "129.compress",
        withPolicy(makeW128Config(), LsqModel::NAS, SpecPolicy::Naive));

    EXPECT_TRUE(viaDaemon.ok);
    EXPECT_EQ(viaDaemon.workload, direct.workload);
    EXPECT_EQ(viaDaemon.config, direct.config);
    EXPECT_EQ(viaDaemon.cycles, direct.cycles);
    EXPECT_EQ(viaDaemon.commits, direct.commits);
    EXPECT_EQ(viaDaemon.violations, direct.violations);
    EXPECT_EQ(viaDaemon.replays, direct.replays);
    EXPECT_EQ(viaDaemon.branchMispredicts, direct.branchMispredicts);
    EXPECT_EQ(viaDaemon.commitWidth, direct.commitWidth);
    EXPECT_EQ(viaDaemon.cpiSlots, direct.cpiSlots)
        << "CPI stacks travel with the record";

    ASSERT_TRUE(awaitEvent(c, "done", event));
    EXPECT_EQ(ev(event, "runs"), "1");
    EXPECT_EQ(ev(event, "failed"), "0");
}

TEST(SvcServer, SecondClientWithTheSameSpecIsServedFromTheCache)
{
    LiveServer live("svc_cachehit", inlineOptions());
    ASSERT_TRUE(live.started);
    const std::string submit =
        "{\"cmd\":\"submit\",\"id\":\"s\","
        "\"workloads\":\"129.compress,130.li\"}";
    std::string err;
    Event event;
    {
        Client first = live.connect();
        ASSERT_TRUE(first.sendLine(submit, &err));
        ASSERT_TRUE(awaitEvent(first, "accepted", event));
        EXPECT_EQ(ev(event, "cached"), "0");
        ASSERT_TRUE(awaitEvent(first, "done", event));
    }
    Client second = live.connect();
    ASSERT_TRUE(second.sendLine(submit, &err));
    ASSERT_TRUE(awaitEvent(second, "accepted", event));
    EXPECT_EQ(ev(event, "cached"), "2")
        << "every run must come out of the shared corpus";
    EXPECT_EQ(ev(event, "queued"), "0");
    ASSERT_TRUE(awaitEvent(second, "run", event));
    EXPECT_EQ(ev(event, "cache_hit"), "true");
    ASSERT_TRUE(awaitEvent(second, "done", event));
    EXPECT_EQ(ev(event, "failed"), "0");
}

TEST(SvcServer, QuotaRejectsAreAllOrNothing)
{
    ServerOptions opts = inlineOptions();
    opts.limits.maxClientInflight = 1;
    LiveServer live("svc_quota", opts);
    ASSERT_TRUE(live.started);
    Client c = live.connect();
    std::string err;
    // Two runs against a one-run quota: the whole submit bounces and
    // nothing is admitted or partially delivered.
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"q\","
                           "\"workloads\":\"129.compress,130.li\"}",
                           &err));
    Event event;
    ASSERT_TRUE(awaitEvent(c, "rejected", event));
    EXPECT_EQ(ev(event, "reason"), "quota exceeded");
    // A submit that fits the quota still works on the same session.
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"q2\","
                           "\"workloads\":\"129.compress\"}",
                           &err));
    ASSERT_TRUE(awaitEvent(c, "accepted", event));
    ASSERT_TRUE(awaitEvent(c, "done", event));
    EXPECT_EQ(ev(event, "failed"), "0");
}

TEST(SvcServer, DisconnectMidSweepOrphansTheWorkIntoTheCorpus)
{
    LiveServer live("svc_orphan", inlineOptions());
    ASSERT_TRUE(live.started);
    std::string err;
    Event event;
    {
        // Submit, see the accept, then vanish without reading results.
        Client ghost = live.connect();
        ASSERT_TRUE(ghost.sendLine("{\"cmd\":\"submit\",\"id\":\"g\","
                                   "\"workloads\":\"129.compress\"}",
                                   &err));
        ASSERT_TRUE(awaitEvent(ghost, "accepted", event));
        ghost.close();
    }
    // The orphaned run must still execute and land in the shared
    // cache: a later identical submit is served without re-running.
    // (Poll until the orphan finishes — there is no client left to
    // stream its completion to.)
    Client c = live.connect();
    for (int attempt = 0;; ++attempt) {
        ASSERT_TRUE(c.sendLine("{\"cmd\":\"stats\"}", &err));
        ASSERT_TRUE(awaitEvent(c, "stats", event));
        if (ev(event, "cache_size") == "1")
            break;
        ASSERT_LT(attempt, 200) << "orphaned run never completed";
        ::usleep(10'000);
    }
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"after\","
                           "\"workloads\":\"129.compress\"}",
                           &err));
    ASSERT_TRUE(awaitEvent(c, "accepted", event));
    EXPECT_EQ(ev(event, "cached"), "1");
    ASSERT_TRUE(awaitEvent(c, "done", event));
}

TEST(SvcServer, ShutdownDrainsAndSaysGoodbye)
{
    LiveServer live("svc_shutdown", inlineOptions());
    ASSERT_TRUE(live.started);
    Client c = live.connect();
    std::string err;
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"last\","
                           "\"workloads\":\"129.compress\"}",
                           &err));
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"shutdown\"}", &err));
    // The admitted run still completes and is delivered before the
    // farewell.
    Event event;
    ASSERT_TRUE(awaitEvent(c, "done", event));
    EXPECT_EQ(ev(event, "failed"), "0");
    ASSERT_TRUE(awaitEvent(c, "shutdown", event));
    EXPECT_FALSE(c.nextEvent(event, &err)) << "EOF after the farewell";
    live.thread.join();
    EXPECT_EQ(live.exitCode, 0);
    EXPECT_FALSE(std::filesystem::exists(live.opts.socketPath))
        << "socket unlinked on clean drain";
}

TEST(SvcServer, DrainingServerRejectsNewSubmits)
{
    LiveServer live("svc_draining", inlineOptions());
    ASSERT_TRUE(live.started);
    Client a = live.connect();
    Client b = live.connect();
    std::string err;
    Event event;
    // Enough queued work that the drain stays open while session b
    // talks to the server (the inline executor retires one unit per
    // loop iteration).
    ASSERT_TRUE(a.sendLine("{\"cmd\":\"submit\",\"id\":\"hold\"}",
                           &err));
    ASSERT_TRUE(awaitEvent(a, "accepted", event));
    ASSERT_TRUE(a.sendLine("{\"cmd\":\"shutdown\"}", &err));
    // Wait until the drain has actually begun — b's probes are still
    // answered, because existing sessions live through a drain.
    do {
        ASSERT_TRUE(b.sendLine("{\"cmd\":\"stats\"}", &err));
        ASSERT_TRUE(awaitEvent(b, "stats", event));
    } while (ev(event, "draining") != "true");
    ASSERT_GT(std::stoul(ev(event, "queued")) +
                  std::stoul(ev(event, "running")),
              0u)
        << "the hold sweep must still be in flight for the rejection "
           "below to be meaningful";
    // New work bounces: a draining server takes no new submits.
    ASSERT_TRUE(b.sendLine("{\"cmd\":\"submit\",\"id\":\"late\","
                           "\"workloads\":\"129.compress\"}",
                           &err));
    ASSERT_TRUE(awaitEvent(b, "rejected", event));
    EXPECT_EQ(ev(event, "reason"), "draining");
    // The admitted sweep still completes before the farewell.
    ASSERT_TRUE(awaitEvent(a, "done", event));
    EXPECT_EQ(ev(event, "failed"), "0");
    ASSERT_TRUE(awaitEvent(b, "shutdown", event));
    live.thread.join();
    EXPECT_EQ(live.exitCode, 0);
}

/**
 * The acceptance gauntlet: a crash-storm client (every run armed with
 * a host-crash fault) against the ISOLATED executor. Every death must
 * be classified into the failure taxonomy, reported as injected, and
 * the server must keep serving afterwards.
 */
TEST(SvcServer, IsolatedExecutorContainsACrashStorm)
{
    ServerOptions opts;
    opts.isolate = true;
    opts.slots = 2;
    opts.retries = 0; // every armed run dies deterministically; don't retry
    opts.timeoutSec = 60;
    LiveServer live("svc_storm", opts);
    ASSERT_TRUE(live.started);
    Client c = live.connect();
    std::string err;
    ASSERT_TRUE(c.sendLine(
        "{\"cmd\":\"submit\",\"id\":\"storm\","
        "\"workloads\":\"129.compress,130.li\","
        "\"set\":\"check.faults.hostCrashRate=1.0\"}",
        &err));
    Event event;
    ASSERT_TRUE(awaitEvent(c, "accepted", event));
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(awaitEvent(c, "run", event));
        RunResult r;
        ASSERT_TRUE(sweep::runRecordParse(event, r));
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.failKind, FailKind::Crash) << r.failLabel();
        EXPECT_TRUE(r.injectedHostFault)
            << "armed faults must be tagged injected";
    }
    ASSERT_TRUE(awaitEvent(c, "done", event));
    EXPECT_EQ(ev(event, "failed"), "0")
        << "injected deaths are contained, not campaign failures";
    EXPECT_EQ(ev(event, "injected"), "2");
    // The server shrugged it all off.
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"ping\"}", &err));
    ASSERT_TRUE(awaitEvent(c, "pong", event));
}

TEST(SvcServer, IsolatedExecutorStreamsIntervalSamples)
{
    ServerOptions opts;
    opts.isolate = true;
    opts.slots = 1;
    opts.timeoutSec = 60;
    LiveServer live("svc_interval", opts);
    ASSERT_TRUE(live.started);
    Client c = live.connect();
    std::string err;
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"iv\","
                           "\"workloads\":\"129.compress\","
                           "\"interval\":\"2000\"}",
                           &err));
    Event event;
    ASSERT_TRUE(awaitEvent(c, "accepted", event));
    size_t samples = 0;
    for (;;) {
        ASSERT_TRUE(c.nextEvent(event, &err)) << err;
        const std::string kind = ev(event, "ev");
        if (kind == "interval") {
            ++samples;
            EXPECT_EQ(ev(event, "id"), "iv");
            EXPECT_FALSE(ev(event, "cycle").empty())
                << "sample payload rides in the event";
        } else if (kind == "run") {
            break;
        }
    }
    EXPECT_GT(samples, 0u) << "interval samples precede the record";
    ASSERT_TRUE(awaitEvent(c, "done", event));
    EXPECT_EQ(ev(event, "failed"), "0");
}

double
statNum(const Event &event, const char *key)
{
    return std::strtod(ev(event, key).c_str(), nullptr);
}

TEST(SvcServer, StatsVerbCarriesTheMetricsRegistrySnapshot)
{
    LiveServer live("svc_stats", inlineOptions());
    ASSERT_TRUE(live.started);
    Client c = live.connect();
    std::string err;
    Event event;
    // A fresh daemon already exposes the registry in the stats event,
    // alongside the legacy keys, with everything at zero — including
    // pre-registered label series that have never fired.
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"stats\"}", &err));
    ASSERT_TRUE(awaitEvent(c, "stats", event));
    EXPECT_EQ(ev(event, "cache_size"), "0") << "legacy keys intact";
    EXPECT_EQ(ev(event, "cwsimd_runs_executed_total"), "0");
    EXPECT_EQ(ev(event, "cwsimd_run_results_total_crash"), "0")
        << "zero-count series still export";
    EXPECT_EQ(statNum(event, "cwsimd_sessions_open"), 1.0);

    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"m\","
                           "\"workloads\":\"129.compress,130.li\"}",
                           &err));
    ASSERT_TRUE(awaitEvent(c, "done", event));
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"stats\"}", &err));
    ASSERT_TRUE(awaitEvent(c, "stats", event));
    EXPECT_EQ(ev(event, "cwsimd_submits_accepted_total"), "1");
    EXPECT_EQ(ev(event, "cwsimd_runs_admitted_total"), "2");
    EXPECT_EQ(ev(event, "cwsimd_runs_executed_total"), "2");
    EXPECT_EQ(ev(event, "cwsimd_run_results_total_none"), "2");
    EXPECT_EQ(ev(event, "cwsimd_run_latency_seconds_count"), "2");
    EXPECT_EQ(ev(event, "cwsimd_queue_wait_seconds_count"), "2");
    EXPECT_EQ(statNum(event, "cwsimd_queue_depth"), 0.0);
    EXPECT_EQ(statNum(event, "cwsimd_runs_running"), 0.0);
    EXPECT_EQ(statNum(event, "cwsimd_cache_size"), 2.0);
    EXPECT_GT(statNum(event, "cwsimd_uptime_ms"), 0.0);

    // Resubmitting the same spec is served from the corpus: the cache
    // hit counter moves, the executed counter must not.
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"m2\","
                           "\"workloads\":\"129.compress,130.li\"}",
                           &err));
    ASSERT_TRUE(awaitEvent(c, "done", event));
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"stats\"}", &err));
    ASSERT_TRUE(awaitEvent(c, "stats", event));
    EXPECT_EQ(ev(event, "cwsimd_cache_hits_total"), "2");
    EXPECT_EQ(ev(event, "cwsimd_runs_executed_total"), "2");
    EXPECT_EQ(ev(event, "cwsimd_run_results_total_none"), "2");
}

TEST(SvcServer, RunRecordsCarryTheQueueWaitSplit)
{
    LiveServer live("svc_queuems", inlineOptions());
    ASSERT_TRUE(live.started);
    Client c = live.connect();
    std::string err;
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"w\","
                           "\"workloads\":\"129.compress\"}",
                           &err));
    Event event;
    ASSERT_TRUE(awaitEvent(c, "run", event));
    // The wait/execute split travels in the record; a freshly executed
    // run spent a non-negative (tiny, here) time admitted-but-waiting.
    ASSERT_TRUE(event.count("queue_ms")) << "queue_ms field missing";
    EXPECT_GE(statNum(event, "queue_ms"), 0.0);
    RunResult r;
    ASSERT_TRUE(sweep::runRecordParse(event, r));
    EXPECT_GE(r.queueMs, 0.0);
    ASSERT_TRUE(awaitEvent(c, "done", event));

    // A cache-served copy of the same run reports zero wait: nothing
    // was queued the second time around.
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"w2\","
                           "\"workloads\":\"129.compress\"}",
                           &err));
    ASSERT_TRUE(awaitEvent(c, "run", event));
    EXPECT_EQ(ev(event, "cache_hit"), "true");
    EXPECT_EQ(statNum(event, "queue_ms"), 0.0);
    ASSERT_TRUE(awaitEvent(c, "done", event));
}

TEST(SvcServer, TraceEventsFileIsValidAndCoversEveryExecutedRun)
{
    ServerOptions opts = inlineOptions();
    const std::string tracePath =
        "/tmp/svc_trace." + std::to_string(::getpid()) + ".json";
    opts.traceEventsPath = tracePath;
    LiveServer live("svc_trace", opts);
    ASSERT_TRUE(live.started);
    {
        Client c = live.connect();
        std::string err;
        Event event;
        ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"t\","
                               "\"workloads\":\"129.compress,130.li\"}",
                               &err));
        ASSERT_TRUE(awaitEvent(c, "done", event));
        // Cache-served resubmit: instants on the client track, no new
        // exec spans.
        ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"t2\","
                               "\"workloads\":\"129.compress,130.li\"}",
                               &err));
        ASSERT_TRUE(awaitEvent(c, "done", event));
    }
    EXPECT_EQ(live.stopAndJoin(), 0) << "drain closes the JSON array";

    std::ifstream in(tracePath);
    ASSERT_TRUE(in.is_open()) << tracePath;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    std::remove(tracePath.c_str());

    ASSERT_GE(lines.size(), 4u);
    EXPECT_EQ(lines.front(), "[");
    EXPECT_EQ(lines.back(), "]");

    // One event object per interior line: strip the trailing comma and
    // the one nested "args" object, then the flat-JSON parser validates
    // the rest of each event.
    struct Span
    {
        std::string name, cat;
        double pid, tid, ts, dur;
    };
    std::vector<Span> spans;
    size_t instants = 0;
    for (size_t i = 1; i + 1 < lines.size(); ++i) {
        std::string body = lines[i];
        if (!body.empty() && body.back() == ',')
            body.pop_back();
        size_t at = body.find(",\"args\":{");
        if (at != std::string::npos) {
            size_t close = body.rfind('}', body.size() - 2);
            ASSERT_NE(close, std::string::npos) << lines[i];
            body = body.substr(0, at) + body.substr(close + 1);
        }
        Event evf;
        ASSERT_TRUE(sweep::parseFlatJson(body, evf)) << lines[i];
        ASSERT_TRUE(evf.count("ph")) << body;
        if (ev(evf, "ph") == "X") {
            Span s{ev(evf, "name"), ev(evf, "cat"),
                   statNum(evf, "pid"), statNum(evf, "tid"),
                   statNum(evf, "ts"), statNum(evf, "dur")};
            EXPECT_GE(s.ts, 0.0) << body;
            EXPECT_GE(s.dur, 0.0) << "negative duration: " << body;
            spans.push_back(s);
        } else if (ev(evf, "ph") == "i") {
            ++instants;
        }
    }

    size_t execSpans = 0, runSpans = 0, queuedSpans = 0;
    for (const Span &s : spans) {
        if (s.cat == "exec")
            ++execSpans;
        else if (s.cat == "run")
            ++runSpans;
        else if (s.cat == "queue")
            ++queuedSpans;
    }
    EXPECT_EQ(execSpans, 2u) << "one exec span per executed run";
    EXPECT_EQ(runSpans, 2u) << "one lifecycle span per delivered run";
    EXPECT_EQ(queuedSpans, 2u);
    EXPECT_EQ(instants, 2u) << "one cache_hit instant per cached run";

    // Every queue-wait span nests inside a lifecycle span on the same
    // client track.
    for (const Span &q : spans) {
        if (q.cat != "queue")
            continue;
        bool nested = false;
        for (const Span &r : spans) {
            if (r.cat == "run" && r.pid == q.pid && r.tid == q.tid &&
                r.ts <= q.ts && r.ts + r.dur >= q.ts + q.dur) {
                nested = true;
                break;
            }
        }
        EXPECT_TRUE(nested) << "orphan queued span at ts " << q.ts;
    }
}

TEST(SvcServer, CorpusStreamsEveryCachedRecord)
{
    LiveServer live("svc_corpus", inlineOptions());
    ASSERT_TRUE(live.started);
    Client c = live.connect();
    std::string err;
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"submit\",\"id\":\"seed\","
                           "\"workloads\":\"129.compress,130.li\"}",
                           &err));
    Event event;
    ASSERT_TRUE(awaitEvent(c, "done", event));
    ASSERT_TRUE(c.sendLine("{\"cmd\":\"corpus\"}", &err));
    size_t records = 0;
    for (;;) {
        ASSERT_TRUE(c.nextEvent(event, &err)) << err;
        const std::string kind = ev(event, "ev");
        if (kind == "corpus_record") {
            RunResult r;
            EXPECT_TRUE(sweep::runRecordParse(event, r));
            ++records;
        } else if (kind == "corpus_done") {
            EXPECT_EQ(ev(event, "count"), "2");
            break;
        }
    }
    EXPECT_EQ(records, 2u);
}

} // anonymous namespace
} // namespace cwsim
