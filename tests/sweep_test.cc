/**
 * @file
 * Tests for the parallel sweep engine: serial-vs-parallel determinism
 * over the whole workload suite, the on-disk run cache (hits, stale
 * fingerprints, poisoned entries), JSONL export, and the JSON-lines
 * helpers underneath it all.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "mdp/dep_profile.hh"
#include "obs/cpi_stack.hh"
#include "obs/depprof.hh"
#include "sweep/bench_cli.hh"
#include "sweep/jsonl.hh"
#include "sweep/run_cache.hh"
#include "sweep/sweep.hh"

namespace cwsim
{
namespace
{

using harness::RunResult;
using harness::Runner;
using sweep::SweepEngine;
using sweep::SweepOptions;
using sweep::SweepPlan;

/**
 * A fresh scratch directory under the test's working directory
 * (inside the build tree), removed on destruction.
 */
struct ScratchDir
{
    explicit ScratchDir(const std::string &tag)
        : path(tag + "." + std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~ScratchDir() { std::filesystem::remove_all(path); }

    std::string path;
};

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.failKind, b.failKind);
    EXPECT_EQ(a.failDetail, b.failDetail);
    EXPECT_EQ(a.injectedHostFault, b.injectedHostFault);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.committedLoads, b.committedLoads);
    EXPECT_EQ(a.committedStores, b.committedStores);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.replays, b.replays);
    EXPECT_EQ(a.selectiveRecoveries, b.selectiveRecoveries);
    EXPECT_EQ(a.selectiveFallbacks, b.selectiveFallbacks);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.squashedInsts, b.squashedInsts);
    EXPECT_EQ(a.falseDepLoads, b.falseDepLoads);
    EXPECT_EQ(a.falseDepLatency, b.falseDepLatency);
    EXPECT_EQ(a.injectedViolations, b.injectedViolations);
    EXPECT_EQ(a.commitWidth, b.commitWidth);
    for (size_t i = 0; i < obs::num_cpi_causes; ++i) {
        EXPECT_EQ(a.cpiSlots[i], b.cpiSlots[i])
            << obs::toString(obs::CpiCause(i));
    }
}

/** All 18 workloads under NAV with both recovery models. */
SweepPlan
fullSuitePlan()
{
    SweepPlan plan;
    for (const auto &name : workloads::allNames()) {
        SimConfig squash = withPolicy(makeW128Config(), LsqModel::NAS,
                                      SpecPolicy::Naive);
        plan.add(name, squash);
        SimConfig selective = squash;
        selective.mdp.recovery = RecoveryModel::Selective;
        plan.add(name, selective);
    }
    return plan;
}

TEST(SweepDeterminism, SerialVsParallelFullSuite)
{
    SweepPlan plan = fullSuitePlan();

    Runner serialRunner(4000);
    SweepOptions serialOpts;
    serialOpts.jobs = 1;
    serialOpts.useCache = false;
    SweepEngine serial(serialRunner, serialOpts);
    auto serialResults = serial.run(plan);

    Runner parallelRunner(4000);
    SweepOptions parallelOpts;
    parallelOpts.jobs = 8;
    parallelOpts.useCache = false;
    SweepEngine parallel(parallelRunner, parallelOpts);
    auto parallelResults = parallel.run(plan);

    ASSERT_EQ(serialResults.size(), plan.size());
    ASSERT_EQ(parallelResults.size(), plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        SCOPED_TRACE(plan.jobs()[i].workload + " / " +
                     plan.jobs()[i].config.name());
        expectSameResult(serialResults[i], parallelResults[i]);
    }
    EXPECT_TRUE(serialRunner.failures().empty());
    EXPECT_TRUE(parallelRunner.failures().empty());
}

/** RAII: route dependence profiling to @p path, reset on the way out. */
struct DepProfGuard
{
    explicit DepProfGuard(const std::string &path)
    {
        obs::DepProfManager::instance().resetForTesting();
        obs::DepProfManager::instance().enable(path);
    }

    ~DepProfGuard() { obs::DepProfManager::instance().resetForTesting(); }
};

TEST(DepProfiling, EnabledRunIsBitIdenticalToDisabled)
{
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);

    obs::DepProfManager::instance().resetForTesting();
    Runner off(3000);
    RunResult plain = off.run("129.compress", cfg);
    ASSERT_TRUE(plain.ok) << plain.error;
    EXPECT_FALSE(plain.depProfiled);
    EXPECT_EQ(plain.depLoads, 0u);
    EXPECT_TRUE(plain.depHotEdges.empty());

    ScratchDir dir("depprof_identity_test");
    std::string path = dir.path + "/one.depprof.jsonl";
    RunResult profiled;
    {
        DepProfGuard guard(path);
        Runner on(3000);
        profiled = on.run("129.compress", cfg);
    }
    ASSERT_TRUE(profiled.ok) << profiled.error;

    // The observatory contract: profiling only observes, so every
    // simulated stat is bit-identical either way (expectSameResult
    // covers them all; the dep_* summary is host-side by design).
    expectSameResult(plain, profiled);
    EXPECT_TRUE(profiled.depProfiled);
    EXPECT_GT(profiled.depLoads, 0u);
    EXPECT_GT(profiled.depStores, 0u);

    // The written block validates and agrees with the summary.
    mdp::DepProfileFile file;
    std::string err;
    ASSERT_TRUE(file.load(path, &err)) << err;
    EXPECT_TRUE(file.valid());
    ASSERT_EQ(file.runs().size(), 1u);
    const mdp::DepProfileRun *run =
        file.findRun("129.compress " + cfg.name());
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->sim, "proc");
    EXPECT_EQ(run->loads.size(), profiled.depLoads);
    EXPECT_EQ(run->stores.size(), profiled.depStores);
    EXPECT_EQ(run->edges.size(), profiled.depEdges);
}

TEST(DepProfiling, SerialVsParallelDepSummariesMatchFullSuite)
{
    SweepPlan plan = fullSuitePlan();
    ScratchDir dir("depprof_parallel_test");

    std::vector<RunResult> serial;
    {
        DepProfGuard guard(dir.path + "/serial.depprof.jsonl");
        Runner runner(4000);
        SweepOptions opts;
        opts.jobs = 1;
        opts.useCache = false;
        serial = SweepEngine(runner, opts).run(plan);
    }
    std::vector<RunResult> parallel;
    {
        DepProfGuard guard(dir.path + "/parallel.depprof.jsonl");
        Runner runner(4000);
        SweepOptions opts;
        opts.jobs = 8;
        opts.useCache = false;
        parallel = SweepEngine(runner, opts).run(plan);
    }

    ASSERT_EQ(serial.size(), plan.size());
    ASSERT_EQ(parallel.size(), plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        SCOPED_TRACE(plan.jobs()[i].workload + " / " +
                     plan.jobs()[i].config.name());
        expectSameResult(serial[i], parallel[i]);
        EXPECT_TRUE(serial[i].depProfiled);
        EXPECT_EQ(serial[i].depLoads, parallel[i].depLoads);
        EXPECT_EQ(serial[i].depStores, parallel[i].depStores);
        EXPECT_EQ(serial[i].depEdges, parallel[i].depEdges);
        EXPECT_EQ(serial[i].depHotEdges, parallel[i].depHotEdges);
    }

    // Both profile files validate whole — the block writer's mutex
    // means concurrent workers never interleave lines — and carry one
    // block per run (order may differ; content identity is already
    // proven by the dep_hot_edges comparison above).
    mdp::DepProfileFile sf, pf;
    std::string err;
    ASSERT_TRUE(sf.load(dir.path + "/serial.depprof.jsonl", &err))
        << err;
    ASSERT_TRUE(pf.load(dir.path + "/parallel.depprof.jsonl", &err))
        << err;
    EXPECT_TRUE(sf.valid());
    EXPECT_TRUE(pf.valid());
    EXPECT_EQ(sf.runs().size(), plan.size());
    EXPECT_EQ(pf.runs().size(), plan.size());
}

TEST(SweepEngine, ResultsComeBackInSpecOrder)
{
    SweepPlan plan;
    const std::vector<std::string> names = {"129.compress", "102.swim",
                                            "099.go", "130.li"};
    for (const auto &name : names) {
        plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                  SpecPolicy::Naive));
    }

    Runner runner(3000);
    SweepOptions opts;
    opts.jobs = 4;
    opts.useCache = false;
    SweepEngine engine(runner, opts);
    auto results = engine.run(plan);

    ASSERT_EQ(results.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(results[i].workload, names[i]);
    EXPECT_EQ(engine.timingRuns(), names.size());
    EXPECT_EQ(engine.cacheHits(), 0u);
}

TEST(SweepCache, SecondSweepSimulatesNothing)
{
    ScratchDir dir("sweep_cache_test");
    SweepPlan plan;
    for (const auto &name :
         {"129.compress", "101.tomcatv", "124.m88ksim"}) {
        plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                  SpecPolicy::Naive));
        plan.add(name, withPolicy(makeW128Config(), LsqModel::NAS,
                                  SpecPolicy::SpecSync));
    }

    SweepOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir.path;

    Runner cold(3000);
    SweepEngine coldEngine(cold, opts);
    auto coldResults = coldEngine.run(plan);
    EXPECT_EQ(coldEngine.timingRuns(), plan.size());
    EXPECT_EQ(coldEngine.cacheHits(), 0u);

    // A fresh runner + engine sharing only the cache directory: every
    // run must be served from disk, zero timing simulations.
    Runner warm(3000);
    SweepEngine warmEngine(warm, opts);
    auto warmResults = warmEngine.run(plan);
    EXPECT_EQ(warmEngine.timingRuns(), 0u);
    EXPECT_EQ(warmEngine.cacheHits(), plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        expectSameResult(coldResults[i], warmResults[i]);
        // Host-profiling metadata: cold runs were simulated (and timed),
        // warm runs are flagged as served from the cache.
        EXPECT_FALSE(coldResults[i].cacheHit);
        EXPECT_GT(coldResults[i].wallMs, 0.0);
        EXPECT_TRUE(warmResults[i].cacheHit);
    }
    EXPECT_GT(coldEngine.totalWallMs(), 0.0);
    EXPECT_GT(coldEngine.totalSimCycles(), 0u);
    EXPECT_EQ(warmEngine.totalWallMs(), 0.0);
}

TEST(SweepCache, StaleAndPoisonedEntriesAreRecomputed)
{
    ScratchDir dir("sweep_poison_test");
    SweepPlan plan;
    plan.add("129.compress", withPolicy(makeW128Config(),
                                        LsqModel::NAS,
                                        SpecPolicy::Naive));

    // Poison the cache: garbage, truncation, a record with a stale
    // fingerprint (different scale), and one with an unknown schema.
    {
        Runner other(9000);
        RunResult fake = other.run("129.compress", plan.jobs()[0].config);
        uint64_t staleFp = sweep::fingerprintRun(
            "129.compress", 9000, plan.jobs()[0].config);
        std::ofstream out(dir.path + "/runs.jsonl");
        out << "this is not json\n";
        out << "{\"v\":1,\"fp\":\"0123\",\"workload\":\"x\"\n";
        out << sweep::runRecordLine(fake, staleFp, 9000) << '\n';
        out << "{\"v\":999,\"fp\":\"00ff\",\"ok\":true}\n";
    }

    SweepOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir.path;
    Runner runner(3000);
    SweepEngine engine(runner, opts);
    auto results = engine.run(plan);

    // Nothing matched the scale-3000 fingerprint, so the run was
    // simulated fresh, and the result reflects scale 3000.
    EXPECT_EQ(engine.timingRuns(), 1u);
    EXPECT_EQ(engine.cacheHits(), 0u);
    ASSERT_TRUE(results[0].ok);
    EXPECT_LT(results[0].commits, 6000u);

    // The freshly appended record must now hit.
    Runner again(3000);
    SweepEngine engine2(again, opts);
    auto results2 = engine2.run(plan);
    EXPECT_EQ(engine2.timingRuns(), 0u);
    EXPECT_EQ(engine2.cacheHits(), 1u);
    expectSameResult(results[0], results2[0]);
}

TEST(SweepJson, OneRecordPerRunIncludingFailures)
{
    ScratchDir dir("sweep_json_test");
    std::string jsonPath = dir.path + "/results.jsonl";

    SweepPlan plan;
    plan.add("129.compress", withPolicy(makeW128Config(),
                                        LsqModel::NAS,
                                        SpecPolicy::Naive));
    // A run that cannot finish: the cycle budget is far below what
    // the workload needs, so the halt check raises a SimError.
    SimConfig doomed = withPolicy(makeW128Config(), LsqModel::NAS,
                                  SpecPolicy::Naive);
    doomed.maxCycles = 50;
    plan.add("129.compress", doomed);

    SweepOptions opts;
    opts.jobs = 2;
    opts.useCache = false;
    opts.jsonPath = jsonPath;
    Runner runner(3000);
    SweepEngine engine(runner, opts);
    auto results = engine.run(plan);

    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_FALSE(results[1].error.empty());
    EXPECT_EQ(runner.failures().size(), 1u);

    std::ifstream in(jsonPath);
    ASSERT_TRUE(in.good());
    std::vector<std::map<std::string, std::string>> records;
    std::string line;
    while (std::getline(in, line)) {
        std::map<std::string, std::string> fields;
        ASSERT_TRUE(sweep::parseFlatJson(line, fields)) << line;
        records.push_back(std::move(fields));
    }
    ASSERT_EQ(records.size(), plan.size());
    EXPECT_EQ(records[0].at("ok"), "true");
    EXPECT_EQ(records[1].at("ok"), "false");
    EXPECT_NE(records[1].at("error"), "");
    EXPECT_EQ(records[0].at("workload"), "129.compress");

    // Round trip through the record parser.
    RunResult parsed;
    ASSERT_TRUE(sweep::runRecordParse(records[1], parsed));
    expectSameResult(results[1], parsed);
}

TEST(SweepRecord, V2RoundTripsHostProfilingFields)
{
    RunResult r;
    r.workload = "129.compress";
    r.config = "NAS/NAV W128";
    r.ok = false;
    r.error = "SimError: watchdog";
    r.cycles = 5000;
    r.commits = 1234;
    r.wallMs = 250.0;
    r.cacheHit = true;
    r.diagnostic = "cycle 4999: commit seq 42\ncycle 5000: halt";
    EXPECT_DOUBLE_EQ(r.simCyclesPerSec(), 20'000.0);

    std::string line = sweep::runRecordLine(r, 0xabcdull, 3000);
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(line, fields));
    EXPECT_EQ(fields.at("v"), "5");
    EXPECT_EQ(fields.at("wall_ms"), "250");
    EXPECT_EQ(fields.at("sim_cycles_per_sec"), "20000");
    EXPECT_EQ(fields.at("cache_hit"), "true");
    EXPECT_NE(fields.at("diagnostic").find("halt"), std::string::npos);

    RunResult parsed;
    ASSERT_TRUE(sweep::runRecordParse(fields, parsed));
    expectSameResult(r, parsed);
    EXPECT_DOUBLE_EQ(parsed.wallMs, 250.0);
    EXPECT_TRUE(parsed.cacheHit);
    EXPECT_EQ(parsed.diagnostic, r.diagnostic);

    // A v2+ record missing its host-profiling fields is malformed.
    fields.erase("wall_ms");
    EXPECT_FALSE(sweep::runRecordParse(fields, parsed));
}

TEST(SweepRecord, V3RoundTripsCpiStack)
{
    RunResult r;
    r.workload = "129.compress";
    r.config = "NAS/NAV W128";
    r.cycles = 1000;
    r.commits = 2600;
    r.commitWidth = 8;
    r.cpiSlots[size_t(obs::CpiCause::Committed)] = 2600;
    r.cpiSlots[size_t(obs::CpiCause::MemDepSquash)] = 1400;
    r.cpiSlots[size_t(obs::CpiCause::CacheMiss)] = 4000;
    ASSERT_EQ(r.cpiTotalSlots(), r.cycles * 8);
    EXPECT_TRUE(r.hasCpiStack());
    EXPECT_DOUBLE_EQ(r.cpiFraction(obs::CpiCause::CacheMiss), 0.5);

    std::string line = sweep::runRecordLine(r, 0x1234ull, 3000);
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(line, fields));
    EXPECT_EQ(fields.at("commit_width"), "8");
    EXPECT_EQ(fields.at("cpi_committed"), "2600");
    EXPECT_EQ(fields.at("cpi_mem_dep_squash"), "1400");
    EXPECT_EQ(fields.at("cpi_cache_miss"), "4000");
    EXPECT_EQ(fields.at("cpi_exec"), "0");

    RunResult parsed;
    ASSERT_TRUE(sweep::runRecordParse(fields, parsed));
    expectSameResult(r, parsed);

    // A v3 record missing any CPI field is malformed.
    fields.erase("cpi_window_full");
    EXPECT_FALSE(sweep::runRecordParse(fields, parsed));

    // But the same fields relabeled v2 parse fine — the CPI columns
    // are simply unknown, signalled by commitWidth == 0.
    fields["v"] = "2";
    ASSERT_TRUE(sweep::runRecordParse(fields, parsed));
    EXPECT_FALSE(parsed.hasCpiStack());
    EXPECT_EQ(parsed.commitWidth, 0u);
    EXPECT_TRUE(std::isnan(parsed.cpiFraction(obs::CpiCause::Exec)));
}

TEST(SweepRecord, V1RecordsStayReadable)
{
    // A record written before the schema gained host-profiling fields
    // (run_record_version 1) must still parse, with the new fields
    // defaulted, so bumping the schema never invalidates a warm cache.
    sweep::JsonObject obj;
    obj.add("v", static_cast<uint64_t>(1))
        .add("fp", std::string("00000000deadbeef"))
        .add("workload", std::string("129.compress"))
        .add("config", std::string("NAS/NAV W128"))
        .add("scale", static_cast<uint64_t>(3000))
        .add("ok", true)
        .add("error", std::string())
        .add("cycles", static_cast<uint64_t>(4321))
        .add("commits", static_cast<uint64_t>(3000))
        .add("committedLoads", static_cast<uint64_t>(700))
        .add("committedStores", static_cast<uint64_t>(300))
        .add("violations", static_cast<uint64_t>(5))
        .add("replays", static_cast<uint64_t>(9))
        .add("selectiveRecoveries", static_cast<uint64_t>(2))
        .add("selectiveFallbacks", static_cast<uint64_t>(1))
        .add("branchMispredicts", static_cast<uint64_t>(40))
        .add("squashedInsts", static_cast<uint64_t>(200))
        .add("falseDepLoads", static_cast<uint64_t>(11))
        .add("falseDepLatency", 17.5)
        .add("injectedViolations", static_cast<uint64_t>(0))
        .add("ipc", 0.694);

    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(obj.str(), fields));
    RunResult parsed;
    ASSERT_TRUE(sweep::runRecordParse(fields, parsed));
    EXPECT_TRUE(parsed.ok);
    EXPECT_EQ(parsed.cycles, 4321u);
    EXPECT_EQ(parsed.commits, 3000u);
    EXPECT_DOUBLE_EQ(parsed.falseDepLatency, 17.5);
    // New fields come back defaulted.
    EXPECT_DOUBLE_EQ(parsed.wallMs, 0.0);
    EXPECT_DOUBLE_EQ(parsed.simCyclesPerSec(), 0.0);
    EXPECT_FALSE(parsed.cacheHit);
    EXPECT_TRUE(parsed.diagnostic.empty());
    // ... including the v3 CPI stack, whose absence is marked by
    // commitWidth == 0 ("unknown"), never zero-loss.
    EXPECT_FALSE(parsed.hasCpiStack());

    // Unknown future versions are still rejected outright.
    fields["v"] = "9";
    EXPECT_FALSE(sweep::runRecordParse(fields, parsed));
}

TEST(SweepRecord, V4RoundTripsFailureTaxonomy)
{
    RunResult r;
    r.workload = "126.gcc";
    r.config = "NAS/NAV W128";
    r.ok = false;
    r.error = "isolated run died: crash(SIGSEGV) after 2 attempt(s)";
    r.failKind = harness::FailKind::Crash;
    r.failDetail = "SIGSEGV";
    r.injectedHostFault = true;

    std::string line = sweep::runRecordLine(r, 0x1234ull, 3000);
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(line, fields));
    EXPECT_EQ(fields.at("fail_kind"), "crash");
    EXPECT_EQ(fields.at("fail_detail"), "SIGSEGV");
    EXPECT_EQ(fields.at("fail_injected"), "true");

    RunResult parsed;
    ASSERT_TRUE(sweep::runRecordParse(fields, parsed));
    expectSameResult(r, parsed);

    // A v4 record missing any taxonomy field is malformed...
    auto broken = fields;
    broken.erase("fail_kind");
    EXPECT_FALSE(sweep::runRecordParse(broken, parsed));
    broken = fields;
    broken["fail_kind"] = "exploded";
    EXPECT_FALSE(sweep::runRecordParse(broken, parsed));

    // ...but the same fields relabeled v3 parse fine, with the kind
    // derived from ok: pre-isolation failures were all sim_errors.
    fields["v"] = "3";
    ASSERT_TRUE(sweep::runRecordParse(fields, parsed));
    EXPECT_EQ(parsed.failKind, harness::FailKind::SimError);
    EXPECT_TRUE(parsed.failDetail.empty());
    EXPECT_FALSE(parsed.injectedHostFault);
}

TEST(SweepRecord, V5RoundTripsDependenceProfileSummary)
{
    RunResult r;
    r.workload = "129.compress";
    r.config = "NAS/NAV W128";
    r.cycles = 1000;
    r.commits = 900;
    r.depProfiled = true;
    r.depLoads = 12;
    r.depStores = 7;
    r.depEdges = 3;
    r.depHotEdges = "0x200-0x100:5:0;0x210-0x104:2:1";

    std::string line = sweep::runRecordLine(r, 0x1234ull, 3000);
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(line, fields));
    EXPECT_EQ(fields.at("dep_profiled"), "true");
    EXPECT_EQ(fields.at("dep_loads"), "12");
    EXPECT_EQ(fields.at("dep_stores"), "7");
    EXPECT_EQ(fields.at("dep_edges"), "3");
    EXPECT_EQ(fields.at("dep_hot_edges"), r.depHotEdges);

    RunResult parsed;
    ASSERT_TRUE(sweep::runRecordParse(fields, parsed));
    expectSameResult(r, parsed);
    EXPECT_TRUE(parsed.depProfiled);
    EXPECT_EQ(parsed.depLoads, 12u);
    EXPECT_EQ(parsed.depStores, 7u);
    EXPECT_EQ(parsed.depEdges, 3u);
    EXPECT_EQ(parsed.depHotEdges, r.depHotEdges);

    // A v5 record missing any dependence-summary field is malformed,
    // as is a non-boolean dep_profiled.
    auto broken = fields;
    broken.erase("dep_profiled");
    EXPECT_FALSE(sweep::runRecordParse(broken, parsed));
    broken = fields;
    broken.erase("dep_hot_edges");
    EXPECT_FALSE(sweep::runRecordParse(broken, parsed));
    broken = fields;
    broken["dep_profiled"] = "maybe";
    EXPECT_FALSE(sweep::runRecordParse(broken, parsed));

    // The same fields relabeled v4 parse fine: the summary columns
    // are unknown to that schema, so they come back defaulted.
    fields["v"] = "4";
    ASSERT_TRUE(sweep::runRecordParse(fields, parsed));
    EXPECT_FALSE(parsed.depProfiled);
    EXPECT_EQ(parsed.depLoads, 0u);
    EXPECT_EQ(parsed.depEdges, 0u);
    EXPECT_TRUE(parsed.depHotEdges.empty());
}

TEST(FailKindTest, NamesRoundTrip)
{
    using harness::FailKind;
    for (FailKind k : {FailKind::None, FailKind::SimError,
                       FailKind::Crash, FailKind::Timeout,
                       FailKind::Oom, FailKind::Protocol}) {
        FailKind back = FailKind::None;
        ASSERT_TRUE(harness::failKindFromString(harness::toString(k),
                                                back));
        EXPECT_EQ(back, k);
    }
    FailKind out;
    EXPECT_FALSE(harness::failKindFromString("bogus", out));

    RunResult r;
    EXPECT_EQ(r.failLabel(), "-");
    r.failKind = FailKind::Timeout;
    EXPECT_EQ(r.failLabel(), "timeout");
    r.failDetail = "wall-clock 2.0s";
    EXPECT_EQ(r.failLabel(), "timeout(wall-clock 2.0s)");
}

TEST(SweepCache, TornTrailingRecordIsSilentlySkipped)
{
    ScratchDir dir("sweep_torn_test");
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);

    RunResult good;
    good.workload = "129.compress";
    good.config = cfg.name();
    good.cycles = 1234;
    good.commits = 999;
    uint64_t fp = sweep::fingerprintRun("129.compress", 3000, cfg);

    // A complete record followed by a record torn mid-line — the
    // signature of a writer killed inside append() — with no newline.
    {
        std::ofstream out(dir.path + "/runs.jsonl", std::ios::binary);
        out << sweep::runRecordLine(good, fp, 3000) << '\n';
        std::string torn = sweep::runRecordLine(good, fp + 1, 3000);
        out << torn.substr(0, torn.size() / 2);
    }

    // Reload: the torn tail is expected damage, not corruption.
    sweep::RunCache cache(dir.path);
    EXPECT_EQ(cache.size(), 1u);
    RunResult out;
    ASSERT_TRUE(cache.lookup(fp, out));
    EXPECT_EQ(out.cycles, 1234u);
    EXPECT_FALSE(cache.lookup(fp + 1, out));

    sweep::CacheFsckReport rep = sweep::fsckRunCache(dir.path);
    EXPECT_TRUE(rep.tornTail);
    EXPECT_EQ(rep.unparseable, 0u);
    EXPECT_TRUE(rep.clean());

    // The next append repairs the tail: every line of the file,
    // including the new record, now parses.
    RunResult fresh = good;
    fresh.cycles = 4321;
    cache.append(fp + 2, 3000, fresh);

    sweep::RunCache reloaded(dir.path);
    EXPECT_EQ(reloaded.size(), 2u);
    ASSERT_TRUE(reloaded.lookup(fp + 2, out));
    EXPECT_EQ(out.cycles, 4321u);
    EXPECT_FALSE(sweep::fsckRunCache(dir.path).tornTail);
}

TEST(SweepCache, FsckAndCompact)
{
    ScratchDir dir("sweep_fsck_test");
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    RunResult r;
    r.workload = "130.li";
    r.config = cfg.name();

    // Two distinct fingerprints; fp1 written twice (later wins), plus
    // a garbage line and a torn tail.
    {
        std::ofstream out(dir.path + "/runs.jsonl", std::ios::binary);
        r.cycles = 1;
        out << sweep::runRecordLine(r, 0xa1, 3000) << '\n';
        r.cycles = 2;
        out << sweep::runRecordLine(r, 0xb2, 3000) << '\n';
        out << "definitely not json\n";
        r.cycles = 3;
        out << sweep::runRecordLine(r, 0xa1, 3000) << '\n';
        out << "{\"v\":4,\"torn";
    }

    sweep::CacheFsckReport rep = sweep::fsckRunCache(dir.path);
    EXPECT_EQ(rep.lines, 4u);
    EXPECT_EQ(rep.valid, 3u);
    EXPECT_EQ(rep.duplicates, 1u);
    EXPECT_EQ(rep.distinct(), 2u);
    EXPECT_EQ(rep.unparseable, 1u);
    EXPECT_TRUE(rep.tornTail);
    EXPECT_FALSE(rep.clean());
    EXPECT_NE(rep.summary().find("2 distinct"), std::string::npos);

    // Compaction keeps the newest record per fingerprint and drops the
    // garbage and the torn tail.
    std::string err;
    sweep::CacheFsckReport before;
    ASSERT_TRUE(sweep::compactRunCache(dir.path, &err, &before))
        << err;
    EXPECT_EQ(before.distinct(), 2u);

    sweep::CacheFsckReport after = sweep::fsckRunCache(dir.path);
    EXPECT_EQ(after.lines, 2u);
    EXPECT_EQ(after.valid, 2u);
    EXPECT_EQ(after.duplicates, 0u);
    EXPECT_EQ(after.unparseable, 0u);
    EXPECT_FALSE(after.tornTail);
    EXPECT_TRUE(after.clean());

    // The superseding (cycles == 3) record survived, not the original.
    sweep::RunCache cache(dir.path);
    RunResult out;
    ASSERT_TRUE(cache.lookup(0xa1, out));
    EXPECT_EQ(out.cycles, 3u);
    ASSERT_TRUE(cache.lookup(0xb2, out));
    EXPECT_EQ(out.cycles, 2u);

    // Compacting a directory with no cache file is a clean no-op.
    ScratchDir empty("sweep_fsck_empty");
    EXPECT_TRUE(sweep::compactRunCache(empty.path, &err));
    EXPECT_TRUE(sweep::fsckRunCache(empty.path).clean());
}

TEST(SweepCache, CompactIsSafeWhileAWriterHoldsTheCacheOpen)
{
    // A daemon keeps its RunCache (and its O_APPEND descriptor) open
    // across compactions. Because compaction rewrites the same inode
    // in place under the appenders' flock — rather than renaming a
    // temp file over it — records the live writer appends AFTER the
    // compaction must land in the surviving file, not a renamed-away
    // orphan.
    ScratchDir dir("sweep_compact_live_writer");
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    RunResult r;
    r.workload = "130.li";
    r.config = cfg.name();

    sweep::RunCache writer(dir.path); // stays open throughout
    r.cycles = 1;
    writer.append(0xa1, 3000, r);
    r.cycles = 2;
    writer.append(0xa1, 3000, r); // superseded duplicate
    r.cycles = 3;
    writer.append(0xb2, 3000, r);

    std::string err;
    ASSERT_TRUE(sweep::compactRunCache(dir.path, &err)) << err;
    EXPECT_EQ(sweep::fsckRunCache(dir.path).duplicates, 0u);

    // The still-open writer appends more; a fresh reader must see both
    // the compacted records and the post-compaction append.
    r.cycles = 4;
    writer.append(0xc3, 3000, r);

    sweep::RunCache reader(dir.path);
    EXPECT_EQ(reader.size(), 3u);
    RunResult out;
    ASSERT_TRUE(reader.lookup(0xa1, out));
    EXPECT_EQ(out.cycles, 2u);
    ASSERT_TRUE(reader.lookup(0xb2, out));
    EXPECT_EQ(out.cycles, 3u);
    ASSERT_TRUE(reader.lookup(0xc3, out));
    EXPECT_EQ(out.cycles, 4u);
    EXPECT_TRUE(sweep::fsckRunCache(dir.path).clean());
}

TEST(SweepCache, ForEachVisitsEveryEntryWithItsScale)
{
    ScratchDir dir("sweep_foreach_test");
    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    RunResult r;
    r.workload = "130.li";
    r.config = cfg.name();

    sweep::RunCache cache(dir.path);
    r.cycles = 7;
    cache.append(0xa1, 3000, r);
    r.cycles = 8;
    cache.append(0xb2, 5000, r);

    // Scale must survive a reload too (it rides in the record line).
    sweep::RunCache reloaded(dir.path);
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> seen;
    reloaded.forEach([&](uint64_t fp, uint64_t scale,
                         const RunResult &run) {
        seen[fp] = {scale, run.cycles};
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0xa1].first, 3000u);
    EXPECT_EQ(seen[0xa1].second, 7u);
    EXPECT_EQ(seen[0xb2].first, 5000u);
    EXPECT_EQ(seen[0xb2].second, 8u);
}

TEST(SweepFingerprint, SensitiveToEveryInput)
{
    SimConfig base = withPolicy(makeW128Config(), LsqModel::NAS,
                                SpecPolicy::Naive);
    uint64_t fp = sweep::fingerprintRun("129.compress", 4000, base);

    // Stable.
    EXPECT_EQ(fp, sweep::fingerprintRun("129.compress", 4000, base));

    // Workload and scale.
    EXPECT_NE(fp, sweep::fingerprintRun("130.li", 4000, base));
    EXPECT_NE(fp, sweep::fingerprintRun("129.compress", 4001, base));

    // Any config knob, including check.* and fault knobs.
    SimConfig differ = base;
    differ.mdp.recovery = RecoveryModel::Selective;
    EXPECT_NE(fp, sweep::fingerprintRun("129.compress", 4000, differ));
    differ = base;
    differ.check.level = 2;
    EXPECT_NE(fp, sweep::fingerprintRun("129.compress", 4000, differ));
    differ = base;
    differ.check.faults.seed = 99;
    EXPECT_NE(fp, sweep::fingerprintRun("129.compress", 4000, differ));
    differ = base;
    differ.check.faults.spuriousViolationRate = 0.25;
    EXPECT_NE(fp, sweep::fingerprintRun("129.compress", 4000, differ));
    differ = base;
    differ.check.faults.hostCrashRate = 0.5;
    EXPECT_NE(fp, sweep::fingerprintRun("129.compress", 4000, differ));
    differ = base;
    differ.mem.l2AccessLatency += 1;
    EXPECT_NE(fp, sweep::fingerprintRun("129.compress", 4000, differ));
}

TEST(SweepParallelFor, CoversAllIndicesOnce)
{
    std::vector<int> counts(100, 0);
    sweep::parallelFor(counts.size(), 7,
                       [&](size_t i) { counts[i]++; });
    for (int c : counts)
        EXPECT_EQ(c, 1);
}

TEST(SweepParallelFor, PropagatesExceptions)
{
    EXPECT_THROW(
        sweep::parallelFor(16, 4,
                           [](size_t i) {
                               if (i == 9)
                                   throw std::runtime_error("boom");
                           }),
        std::runtime_error);
}

TEST(SweepParallelFor, CancelsQueuePromptlyOnError)
{
    // A fatal error in one job must stop workers from claiming the
    // rest of the queue: with 10k queued jobs and a throw on the very
    // first, only the handful already claimed may still run.
    constexpr size_t n = 10'000;
    std::atomic<size_t> executed{0};
    EXPECT_THROW(
        sweep::parallelFor(n, 4,
                           [&](size_t i) {
                               if (i == 0)
                                   throw std::runtime_error("fatal");
                               executed.fetch_add(1);
                               std::this_thread::sleep_for(
                                   std::chrono::milliseconds(1));
                           }),
        std::runtime_error);
    EXPECT_LT(executed.load(), n / 10);
}

TEST(JsonlTest, EscapeAndRoundTrip)
{
    sweep::JsonObject obj;
    obj.add("s", std::string("a\"b\\c\nd"))
        .add("n", static_cast<uint64_t>(42))
        .add("f", 0.5)
        .add("b", true)
        .add("nan", std::numeric_limits<double>::quiet_NaN());
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(sweep::parseFlatJson(obj.str(), fields));
    EXPECT_EQ(fields.at("s"), "a\"b\\c\nd");
    EXPECT_EQ(fields.at("n"), "42");
    EXPECT_EQ(fields.at("f"), "0.5");
    EXPECT_EQ(fields.at("b"), "true");
    EXPECT_EQ(fields.at("nan"), "nan");
}

TEST(JsonlTest, RejectsMalformedLines)
{
    std::map<std::string, std::string> fields;
    EXPECT_FALSE(sweep::parseFlatJson("", fields));
    EXPECT_FALSE(sweep::parseFlatJson("not json", fields));
    EXPECT_FALSE(sweep::parseFlatJson("{\"a\":1", fields));
    EXPECT_FALSE(sweep::parseFlatJson("{\"a\":{\"b\":1}}", fields));
    EXPECT_FALSE(sweep::parseFlatJson("{\"a\":1}trailing", fields));
    EXPECT_TRUE(sweep::parseFlatJson("{}", fields));
    EXPECT_TRUE(fields.empty());
}

TEST(ResolveJobsTest, ClampsRequestToHardwareConcurrency)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    // An explicit request is honored up to the core count; CPU-bound
    // workers beyond it only time-slice, inflating per-run wall time.
    EXPECT_EQ(sweep::resolveJobs(1), 1u);
    EXPECT_LE(sweep::resolveJobs(1000), hw);
    // The default (0) resolves to at least one worker.
    EXPECT_GE(sweep::resolveJobs(0), 1u);
    EXPECT_LE(sweep::resolveJobs(0), hw);
}

TEST(BenchCliTest, ParsesSharedFlags)
{
    const char *argv[] = {"bench",      "--jobs",  "3",
                          "--scale",    "12000",   "--filter",
                          "compress",   "--json",  "out.jsonl",
                          "--no-cache", "--cache-dir", "cdir"};
    sweep::BenchOptions opts = sweep::parseBenchArgs(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_EQ(opts.scale, 12000u);
    EXPECT_EQ(opts.filter, "compress");
    EXPECT_EQ(opts.jsonPath, "out.jsonl");
    EXPECT_FALSE(opts.cache);
    EXPECT_EQ(opts.cacheDir, "cdir");
}

TEST(BenchCliTest, ParsesTracingFlags)
{
    const char *argv[] = {"bench",         "--trace",    "MDP,Recovery",
                          "--trace-file",  "trace.log",  "--pipeview",
                          "pipe.out",      "--interval", "500",
                          "--interval-file", "iv.jsonl"};
    sweep::BenchOptions opts = sweep::parseBenchArgs(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    EXPECT_EQ(opts.traceSpec, "MDP,Recovery");
    EXPECT_EQ(opts.traceFile, "trace.log");
    EXPECT_EQ(opts.pipeviewPath, "pipe.out");
    EXPECT_EQ(opts.intervalCycles, 500u);
    EXPECT_EQ(opts.intervalFile, "iv.jsonl");
}

TEST(BenchCliTest, AcceptsInlineFlagValues)
{
    // Both "--flag value" and "--flag=value" forms are accepted.
    const char *argv[] = {"bench", "--trace=all", "--jobs=2",
                          "--scale=9000", "--interval=250",
                          "--filter=compress"};
    sweep::BenchOptions opts = sweep::parseBenchArgs(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    EXPECT_EQ(opts.traceSpec, "all");
    EXPECT_EQ(opts.jobs, 2u);
    EXPECT_EQ(opts.scale, 9000u);
    EXPECT_EQ(opts.intervalCycles, 250u);
    EXPECT_EQ(opts.filter, "compress");
}

TEST(BenchCliTest, ParsesDepProfFlags)
{
    const char *bare[] = {"bench", "--depprof"};
    sweep::BenchOptions opts =
        sweep::parseBenchArgs(2, const_cast<char **>(bare));
    EXPECT_TRUE(opts.depprof);
    EXPECT_TRUE(opts.depprofFile.empty());

    // --depprof-file implies --depprof; both value forms work.
    const char *with_file[] = {"bench", "--depprof-file",
                               "prof.depprof.jsonl"};
    opts = sweep::parseBenchArgs(3, const_cast<char **>(with_file));
    EXPECT_TRUE(opts.depprof);
    EXPECT_EQ(opts.depprofFile, "prof.depprof.jsonl");

    const char *inlined[] = {"bench", "--depprof-file=p.jsonl"};
    opts = sweep::parseBenchArgs(2, const_cast<char **>(inlined));
    EXPECT_TRUE(opts.depprof);
    EXPECT_EQ(opts.depprofFile, "p.jsonl");

    const char *off[] = {"bench"};
    opts = sweep::parseBenchArgs(1, const_cast<char **>(off));
    EXPECT_FALSE(opts.depprof);
}

TEST(BenchCliTest, ParsesIsolationFlags)
{
    const char *argv[] = {"bench",       "--isolate", "--timeout",
                          "2.5",         "--mem-limit", "4096",
                          "--retries",   "3",         "--set",
                          "core.windowSize=64", "--set=mdp.policy=SYNC"};
    sweep::BenchOptions opts = sweep::parseBenchArgs(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    EXPECT_TRUE(opts.isolate);
    EXPECT_DOUBLE_EQ(opts.timeoutSec, 2.5);
    EXPECT_EQ(opts.memLimitMb, 4096u);
    EXPECT_EQ(opts.retries, 3u);
    ASSERT_EQ(opts.configOverrides.size(), 2u);
    EXPECT_EQ(opts.configOverrides[0], "core.windowSize=64");
    EXPECT_EQ(opts.configOverrides[1], "mdp.policy=SYNC");
    EXPECT_FALSE(opts.cacheFsck);
    EXPECT_FALSE(opts.cacheCompact);

    const char *maint[] = {"bench", "--cache-fsck", "--cache-compact"};
    opts = sweep::parseBenchArgs(3, const_cast<char **>(maint));
    EXPECT_TRUE(opts.cacheFsck);
    EXPECT_TRUE(opts.cacheCompact);
}

TEST(BenchCliTest, IsolationFlagsReadEnvDefaults)
{
    const char *bare[] = {"bench"};
    unsetenv("CWSIM_ISOLATE");
    unsetenv("CWSIM_TIMEOUT");
    unsetenv("CWSIM_MEM_LIMIT");
    unsetenv("CWSIM_RETRIES");
    sweep::BenchOptions opts =
        sweep::parseBenchArgs(1, const_cast<char **>(bare));
    EXPECT_FALSE(opts.isolate);
    EXPECT_DOUBLE_EQ(opts.timeoutSec, 0.0);
    EXPECT_EQ(opts.memLimitMb, 0u);
    EXPECT_EQ(opts.retries, 1u);

    setenv("CWSIM_ISOLATE", "1", 1);
    setenv("CWSIM_TIMEOUT", "1.5", 1);
    setenv("CWSIM_MEM_LIMIT", "2048", 1);
    setenv("CWSIM_RETRIES", "0", 1);
    opts = sweep::parseBenchArgs(1, const_cast<char **>(bare));
    EXPECT_TRUE(opts.isolate);
    EXPECT_DOUBLE_EQ(opts.timeoutSec, 1.5);
    EXPECT_EQ(opts.memLimitMb, 2048u);
    EXPECT_EQ(opts.retries, 0u);

    // Malformed env values warn and fall back, like every CWSIM knob.
    setenv("CWSIM_TIMEOUT", "soon", 1);
    opts = sweep::parseBenchArgs(1, const_cast<char **>(bare));
    EXPECT_DOUBLE_EQ(opts.timeoutSec, 0.0);

    unsetenv("CWSIM_ISOLATE");
    unsetenv("CWSIM_TIMEOUT");
    unsetenv("CWSIM_MEM_LIMIT");
    unsetenv("CWSIM_RETRIES");
}

TEST(BenchCliTest, DefaultScaleRespectsEnvAndOverride)
{
    unsetenv("CWSIM_SCALE");
    const char *bare[] = {"bench"};
    EXPECT_EQ(sweep::parseBenchArgs(1, const_cast<char **>(bare)).scale,
              80'000u);
    EXPECT_EQ(sweep::parseBenchArgs(1, const_cast<char **>(bare), 40'000)
                  .scale,
              40'000u);
    setenv("CWSIM_SCALE", "24000", 1);
    EXPECT_EQ(sweep::parseBenchArgs(1, const_cast<char **>(bare)).scale,
              24'000u);
    unsetenv("CWSIM_SCALE");
}

TEST(BenchCliTest, FilterNames)
{
    std::vector<std::string> names = {"099.go", "129.compress",
                                      "130.li"};
    EXPECT_EQ(sweep::filterNames(names, "").size(), 3u);
    EXPECT_EQ(sweep::filterNames(names, "compress").size(), 1u);
    EXPECT_EQ(sweep::filterNames(names, "1").size(), 2u);
    EXPECT_TRUE(sweep::filterNames(names, "zzz").empty());
}

TEST(SweepJobs, ResolveJobsPrefersExplicitThenEnv)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    unsetenv("CWSIM_JOBS");
    EXPECT_EQ(sweep::resolveJobs(5), std::min(5u, hw));
    EXPECT_GE(sweep::resolveJobs(0), 1u);
    setenv("CWSIM_JOBS", "3", 1);
    EXPECT_EQ(sweep::resolveJobs(0), std::min(3u, hw));
    setenv("CWSIM_JOBS", "junk", 1);
    EXPECT_GE(sweep::resolveJobs(0), 1u); // falls back with a warn
    unsetenv("CWSIM_JOBS");
}

} // anonymous namespace
} // namespace cwsim
