/**
 * @file
 * Tests for the 18-kernel workload suite: every kernel must build,
 * halt, be deterministic, scale with the knob, and approximate its
 * SPEC'95 namesake's dynamic load/store mix (paper Table 1).
 */

#include <gtest/gtest.h>

#include "cpu/processor.hh"
#include "mdp/oracle.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace cwsim
{
namespace
{

class KernelTest : public ::testing::TestWithParam<std::string>
{
  protected:
    static constexpr uint64_t test_scale = 30'000;
};

TEST_P(KernelTest, BuildsAndHalts)
{
    Workload w = workloads::build(GetParam(), test_scale);
    PrepassResult pre = runPrepass(w.program, {test_scale * 4, false});
    EXPECT_TRUE(pre.halted) << w.name << " did not halt";
    EXPECT_GT(pre.instCount, test_scale / 2);
    EXPECT_LT(pre.instCount, test_scale * 3);
}

TEST_P(KernelTest, MatchesPaperLoadStoreMix)
{
    Workload w = workloads::build(GetParam(), test_scale);
    PrepassResult pre = runPrepass(w.program);
    double load_pct = 100.0 * static_cast<double>(pre.loadCount) /
                      static_cast<double>(pre.instCount);
    double store_pct = 100.0 * static_cast<double>(pre.storeCount) /
                       static_cast<double>(pre.instCount);
    // The kernels are calibrated to Table 1 within a tolerance.
    EXPECT_NEAR(load_pct, w.paperLoadPct, 8.0) << w.name;
    EXPECT_NEAR(store_pct, w.paperStorePct, 6.0) << w.name;
}

TEST_P(KernelTest, Deterministic)
{
    Workload a = workloads::build(GetParam(), test_scale);
    Workload b = workloads::build(GetParam(), test_scale);
    PrepassResult pa = runPrepass(a.program);
    PrepassResult pb = runPrepass(b.program);
    EXPECT_EQ(pa.instCount, pb.instCount);
    EXPECT_EQ(pa.memFingerprint, pb.memFingerprint);
    for (unsigned r = 0; r < num_arch_regs; ++r)
        EXPECT_EQ(pa.finalState.regs[r], pb.finalState.regs[r]);
}

TEST_P(KernelTest, ScaleKnobScalesWork)
{
    Workload small = workloads::build(GetParam(), 10'000);
    Workload large = workloads::build(GetParam(), 40'000);
    PrepassResult ps = runPrepass(small.program);
    PrepassResult pl = runPrepass(large.program);
    EXPECT_GT(pl.instCount, ps.instCount * 2) << small.name;
}

TEST_P(KernelTest, HasBranchWork)
{
    // Every kernel needs control flow for the front end to chew on.
    Workload w = workloads::build(GetParam(), test_scale);
    PrepassResult pre = runPrepass(w.program);
    EXPECT_GT(pre.branchCount + pre.takenBranches, pre.instCount / 100)
        << w.name;
}

TEST_P(KernelTest, TimingRunMatchesFunctional)
{
    // The big invariant: the OoO core with naive speculation commits
    // exactly what the interpreter computes, for every kernel.
    Workload w = workloads::build(GetParam(), test_scale);
    PrepassResult pre = runPrepass(w.program);

    SimConfig cfg = withPolicy(makeW128Config(), LsqModel::NAS,
                               SpecPolicy::Naive);
    cfg.maxCycles = 10'000'000;
    Processor proc(cfg, w.program, &pre.deps);
    proc.run();
    ASSERT_TRUE(proc.halted()) << w.name;
    EXPECT_EQ(proc.procStats().commits.value(), pre.instCount) << w.name;
    EXPECT_EQ(proc.memory().fingerprint(), pre.memFingerprint) << w.name;
    for (unsigned r = 0; r < num_arch_regs; ++r) {
        EXPECT_EQ(proc.archState().regs[r], pre.finalState.regs[r])
            << w.name << " register " << r;
    }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest,
                         ::testing::ValuesIn(workloads::allNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             return "k" + n.substr(0, 3);
                         });

TEST(RegistryTest, EighteenKernels)
{
    EXPECT_EQ(workloads::allNames().size(), 18u);
    EXPECT_EQ(workloads::intNames().size(), 8u);
    EXPECT_EQ(workloads::fpNames().size(), 10u);
}

TEST(RegistryTest, ShortNamesResolve)
{
    Workload w = workloads::build("129");
    EXPECT_EQ(w.name, "129.compress");
    EXPECT_FALSE(w.isFp);
    Workload f = workloads::build("145");
    EXPECT_EQ(f.name, "145.fpppp");
    EXPECT_TRUE(f.isFp);
}

TEST(RegistryTest, UnknownNameDies)
{
    EXPECT_EXIT(workloads::build("999.nonesuch"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(RegistryTest, PaperMetadataPresent)
{
    for (const auto &w : workloads::buildAll(5'000)) {
        EXPECT_GT(w.paperLoadPct, 0) << w.name;
        EXPECT_GT(w.paperStorePct, 0) << w.name;
        EXPECT_GT(w.paperIcMillions, 0) << w.name;
        EXPECT_FALSE(w.shortName.empty()) << w.name;
    }
}

} // anonymous namespace
} // namespace cwsim
