/**
 * @file
 * cwsim-client: submit a sweep to a running cwsimd and stream its
 * results, mirroring the bench CLI's semantics — same spec vocabulary
 * (--scale/--filter/--set), same JSONL export shape (--json), same
 * exit-code contract: 0 on a clean campaign, 1 when the server
 * reports unexpected run failures (injected host faults excluded) or
 * rejects the submit, 2 on connection or protocol trouble.
 *
 *   cwsim-client --socket /tmp/cwsimd.sock --preset fig2 \
 *                --scale 4000 --json fig2.jsonl
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sweep/jsonl.hh"
#include "sweep/run_cache.hh"
#include "svc/client.hh"
#include "svc/protocol.hh"

namespace
{

using cwsim::svc::Client;
using cwsim::sweep::JsonObject;

int
usage(const char *argv0, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s --socket PATH [options]\n"
        "       %s --tcp HOST:PORT [options]\n"
        "\n"
        "  --socket PATH     connect to a cwsimd Unix socket\n"
        "  --tcp HOST:PORT   connect over TCP (IPv4)\n"
        "  --id S            sweep identifier (default: sweep)\n"
        "  --preset P        named plan (fig2)\n"
        "  --workloads W     all | int | fp | comma-separated names\n"
        "  --filter SUB      only workloads whose name contains SUB\n"
        "  --scale N         dynamic-instruction target\n"
        "  --config OPTS     one config as comma-separated key=value\n"
        "                    overrides; repeat for more configs\n"
        "  --set K=V         apply an override to every config\n"
        "                    (repeatable)\n"
        "  --interval N      stream interval samples every N cycles\n"
        "  --interval-file P write streamed samples to P\n"
        "  --json PATH       append one JSONL record per run to PATH\n"
        "  --stats           print server stats and exit\n"
        "  --shutdown        ask the server to drain and exit\n"
        "  --quiet           no per-run progress lines\n"
        "  --version         print schema/protocol/build identity\n"
        "  --help            this message\n",
        argv0, argv0);
    return out == stdout ? 0 : 2;
}

std::string
field(const std::map<std::string, std::string> &ev, const char *key)
{
    auto it = ev.find(key);
    return it == ev.end() ? std::string() : it->second;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string socketPath, tcpSpec, id = "sweep";
    std::string preset, workloads, filter, scale, interval;
    std::string jsonPath, intervalPath;
    std::vector<std::string> configs, sets;
    bool statsOnly = false, shutdown = false, quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "cwsim-client: %s requires a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            return usage(argv[0], stdout);
        else if (arg == "--version") {
            std::printf(
                "%s\n",
                cwsim::svc::versionLine("cwsim-client").c_str());
            return 0;
        } else if (arg == "--socket")
            socketPath = value("--socket");
        else if (arg == "--tcp")
            tcpSpec = value("--tcp");
        else if (arg == "--id")
            id = value("--id");
        else if (arg == "--preset")
            preset = value("--preset");
        else if (arg == "--workloads")
            workloads = value("--workloads");
        else if (arg == "--filter")
            filter = value("--filter");
        else if (arg == "--scale")
            scale = value("--scale");
        else if (arg == "--config")
            configs.push_back(value("--config"));
        else if (arg == "--set")
            sets.push_back(value("--set"));
        else if (arg == "--interval")
            interval = value("--interval");
        else if (arg == "--interval-file")
            intervalPath = value("--interval-file");
        else if (arg == "--json")
            jsonPath = value("--json");
        else if (arg == "--stats")
            statsOnly = true;
        else if (arg == "--shutdown")
            shutdown = true;
        else if (arg == "--quiet")
            quiet = true;
        else {
            std::fprintf(stderr, "cwsim-client: unknown flag '%s'\n",
                         arg.c_str());
            return usage(argv[0], stderr);
        }
    }

    Client client;
    std::string err;
    if (!socketPath.empty()) {
        if (!client.connectUnix(socketPath, &err)) {
            std::fprintf(stderr, "cwsim-client: %s\n", err.c_str());
            return 2;
        }
    } else if (!tcpSpec.empty()) {
        size_t colon = tcpSpec.rfind(':');
        if (colon == std::string::npos) {
            std::fprintf(stderr,
                         "cwsim-client: --tcp wants HOST:PORT\n");
            return 2;
        }
        std::string host = tcpSpec.substr(0, colon);
        uint16_t port = static_cast<uint16_t>(
            std::strtoul(tcpSpec.c_str() + colon + 1, nullptr, 10));
        if (!client.connectTcp(host, port, &err)) {
            std::fprintf(stderr, "cwsim-client: %s\n", err.c_str());
            return 2;
        }
    } else {
        return usage(argv[0], stderr);
    }

    std::map<std::string, std::string> ev;
    if (statsOnly) {
        if (!client.sendLine("{\"cmd\":\"stats\"}", &err) ||
            !client.nextEvent(ev, &err)) {
            std::fprintf(stderr, "cwsim-client: %s\n",
                         err.empty() ? "server closed" : err.c_str());
            return 2;
        }
        std::printf("%s\n", client.lastLine().c_str());
        return 0;
    }
    if (shutdown) {
        if (!client.sendLine("{\"cmd\":\"shutdown\"}", &err)) {
            std::fprintf(stderr, "cwsim-client: %s\n", err.c_str());
            return 2;
        }
        // The final shutdown event arrives once the drain completes;
        // an EOF means the server left without it, which is still a
        // completed shutdown from where we stand.
        while (client.nextEvent(ev, &err)) {
            if (field(ev, "ev") == "shutdown")
                break;
        }
        return 0;
    }

    // Assemble and send the submit request.
    JsonObject req;
    req.add("cmd", "submit").add("id", id);
    if (!preset.empty())
        req.add("preset", preset);
    if (!workloads.empty())
        req.add("workloads", workloads);
    if (!filter.empty())
        req.add("filter", filter);
    if (!scale.empty())
        req.add("scale", scale);
    if (!configs.empty()) {
        std::string joined;
        for (const std::string &c : configs) {
            if (!joined.empty())
                joined += ';';
            joined += c;
        }
        req.add("configs", joined);
    }
    if (!sets.empty()) {
        std::string joined;
        for (const std::string &kv : sets) {
            if (!joined.empty())
                joined += ',';
            joined += kv;
        }
        req.add("set", joined);
    }
    if (!interval.empty())
        req.add("interval", interval);
    if (!client.sendLine(req.str(), &err)) {
        std::fprintf(stderr, "cwsim-client: %s\n", err.c_str());
        return 2;
    }

    // Stream events until the sweep is done. Run records are
    // re-exported to --json in seq order — the same spec order the
    // bench CLI writes — once all have arrived.
    std::vector<std::string> records;
    std::ofstream intervalOut;
    if (!intervalPath.empty()) {
        intervalOut.open(intervalPath, std::ios::app);
        if (!intervalOut) {
            std::fprintf(stderr, "cwsim-client: cannot write %s\n",
                         intervalPath.c_str());
            return 2;
        }
    }
    uint64_t failed = 0, injected = 0, runs = 0;
    bool done = false;
    while (!done) {
        if (!client.nextEvent(ev, &err)) {
            std::fprintf(stderr, "cwsim-client: %s\n",
                         err.empty() ? "server closed mid-sweep"
                                     : err.c_str());
            return 2;
        }
        std::string kind = field(ev, "ev");
        if (kind == "rejected") {
            std::fprintf(stderr, "cwsim-client: rejected: %s\n",
                         field(ev, "reason").c_str());
            return 1;
        } else if (kind == "error") {
            std::fprintf(stderr, "cwsim-client: server error: %s\n",
                         field(ev, "reason").c_str());
            return 2;
        } else if (kind == "accepted") {
            if (!quiet) {
                std::fprintf(stderr,
                             "sweep %s accepted: %s run(s) — %s "
                             "cached, %s deduped, %s queued\n",
                             field(ev, "id").c_str(),
                             field(ev, "runs").c_str(),
                             field(ev, "cached").c_str(),
                             field(ev, "deduped").c_str(),
                             field(ev, "queued").c_str());
            }
        } else if (kind == "run") {
            uint64_t seq =
                std::strtoull(field(ev, "seq").c_str(), nullptr, 10);
            if (records.size() <= seq)
                records.resize(seq + 1);
            // Rebuild the canonical record line (envelope stripped)
            // so a --json export is byte-compatible with the bench
            // CLI's: runRecordParse ignores the envelope fields.
            cwsim::harness::RunResult r;
            uint64_t fp = 0;
            std::sscanf(field(ev, "fp").c_str(), "%llx",
                        reinterpret_cast<unsigned long long *>(&fp));
            uint64_t recScale = std::strtoull(
                field(ev, "scale").c_str(), nullptr, 10);
            if (cwsim::sweep::runRecordParse(ev, r)) {
                records[seq] =
                    cwsim::sweep::runRecordLine(r, fp, recScale);
                if (!quiet) {
                    std::fprintf(
                        stderr, "run %llu/%s %s %s%s%s\n",
                        static_cast<unsigned long long>(seq + 1),
                        field(ev, "total").c_str(),
                        field(ev, "workload").c_str(),
                        field(ev, "config").c_str(),
                        r.cacheHit ? " (cached)" : "",
                        r.ok ? ""
                             : (" FAILED: " + r.failLabel()).c_str());
                }
            } else {
                std::fprintf(stderr,
                             "cwsim-client: unparseable run event\n");
                return 2;
            }
        } else if (kind == "interval") {
            if (intervalOut.is_open())
                intervalOut << client.lastLine() << '\n';
        } else if (kind == "done") {
            runs = std::strtoull(field(ev, "runs").c_str(), nullptr,
                                 10);
            failed = std::strtoull(field(ev, "failed").c_str(),
                                   nullptr, 10);
            injected = std::strtoull(field(ev, "injected").c_str(),
                                     nullptr, 10);
            done = true;
        } else if (kind == "shutdown") {
            std::fprintf(stderr,
                         "cwsim-client: server drained mid-sweep\n");
            return 2;
        }
        // pong/stats/hello events are ignorable here.
    }

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath, std::ios::app);
        if (!out) {
            std::fprintf(stderr, "cwsim-client: cannot write %s\n",
                         jsonPath.c_str());
            return 2;
        }
        for (const std::string &line : records) {
            if (!line.empty())
                out << line << '\n';
        }
    }

    if (!quiet) {
        std::fprintf(stderr,
                     "sweep %s done: %llu run(s), %llu failed, %llu "
                     "injected\n",
                     id.c_str(),
                     static_cast<unsigned long long>(runs),
                     static_cast<unsigned long long>(failed),
                     static_cast<unsigned long long>(injected));
    }
    // Bench-CLI exit semantics: injected host faults are contained by
    // design and do not fail the campaign.
    return failed > 0 ? 1 : 0;
}
