/**
 * @file
 * cwsim-report: render a sweep JSONL file (the run-cache / --json
 * export format) as a markdown or HTML report, or diff two JSONL
 * files field-by-field to flag simulated-stat drift. With --connect
 * the records come from a live cwsimd's shared corpus instead of a
 * file, so a report can be pulled from a running service without
 * touching its cache directory.
 *
 * Exit codes: 0 success (diff clean), 1 drift detected, 2 usage or
 * I/O error. The CI stats-diff job relies on this split to tell
 * "stats changed" apart from "the tool broke".
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "svc/client.hh"
#include "sweep/report.hh"
#include "sweep/run_cache.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--format md|html] [--out PATH] SWEEP.jsonl\n"
        "       %s --diff BASELINE.jsonl CURRENT.jsonl\n"
        "       %s --connect SOCKET [--format md|html] [--out PATH]\n"
        "\n"
        "Render a cwsim sweep JSONL file as a report, or compare two\n"
        "sweep files and flag any drift in simulated stats\n"
        "(host-profiling fields are ignored; failed runs compare by\n"
        "fail-kind class, not the host-dependent detail text).\n"
        "\n"
        "  --format md|html  report output format (default: md)\n"
        "  --out PATH        write the report to PATH (default: stdout)\n"
        "  --diff            compare two files instead of rendering\n"
        "  --connect SOCKET  pull the corpus from a running cwsimd\n"
        "                    (Unix socket) instead of a file; may also\n"
        "                    be the CURRENT side of a --diff\n"
        "  --help            show this message\n",
        argv0, argv0, argv0);
    return 2;
}

bool
load(const std::string &path,
     std::vector<cwsim::sweep::ReportRecord> &out)
{
    std::string err;
    size_t rejected = 0;
    if (!cwsim::sweep::loadRunRecords(path, out, &err, &rejected)) {
        std::fprintf(stderr, "cwsim-report: %s\n", err.c_str());
        return false;
    }
    if (rejected > 0) {
        std::fprintf(stderr,
                     "cwsim-report: warning: skipped %zu unparseable "
                     "record(s) in %s\n",
                     rejected, path.c_str());
    }
    if (out.empty()) {
        std::fprintf(stderr, "cwsim-report: no parseable records in %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

/**
 * Pull every corpus record from a running cwsimd over its Unix
 * socket. The daemon streams them as corpus_record events — one run
 * record wrapped in an event envelope, which runRecordParse ignores —
 * terminated by corpus_done.
 */
bool
fetchCorpus(const std::string &socketPath,
            std::vector<cwsim::sweep::ReportRecord> &out)
{
    cwsim::svc::Client client;
    std::string err;
    if (!client.connectUnix(socketPath, &err)) {
        std::fprintf(stderr, "cwsim-report: %s\n", err.c_str());
        return false;
    }
    if (!client.sendLine("{\"cmd\":\"corpus\"}", &err)) {
        std::fprintf(stderr, "cwsim-report: %s\n", err.c_str());
        return false;
    }
    size_t rejected = 0;
    std::map<std::string, std::string> ev;
    for (;;) {
        if (!client.nextEvent(ev, &err)) {
            std::fprintf(stderr, "cwsim-report: %s\n",
                         err.empty() ? "server closed mid-corpus"
                                     : err.c_str());
            return false;
        }
        auto kind = ev.find("ev");
        if (kind == ev.end())
            continue;
        if (kind->second == "corpus_done")
            break;
        if (kind->second == "error") {
            auto reason = ev.find("reason");
            std::fprintf(stderr, "cwsim-report: server error: %s\n",
                         reason == ev.end() ? "?"
                                            : reason->second.c_str());
            return false;
        }
        if (kind->second != "corpus_record")
            continue;
        cwsim::sweep::ReportRecord rec;
        if (!cwsim::sweep::runRecordParse(ev, rec.run)) {
            ++rejected;
            continue;
        }
        auto fp = ev.find("fp");
        if (fp != ev.end())
            rec.fp = fp->second;
        auto scale = ev.find("scale");
        if (scale != ev.end())
            rec.scale = std::strtoull(scale->second.c_str(), nullptr,
                                      10);
        out.push_back(std::move(rec));
    }
    if (rejected > 0) {
        std::fprintf(stderr,
                     "cwsim-report: warning: skipped %zu unparseable "
                     "record(s) from %s\n",
                     rejected, socketPath.c_str());
    }
    if (out.empty()) {
        std::fprintf(stderr, "cwsim-report: empty corpus at %s\n",
                     socketPath.c_str());
        return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool diff = false;
    cwsim::sweep::ReportFormat format =
        cwsim::sweep::ReportFormat::Markdown;
    std::string out_path, connect_path;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else if (std::strcmp(arg, "--diff") == 0) {
            diff = true;
        } else if (std::strcmp(arg, "--format") == 0 && i + 1 < argc) {
            std::string value = argv[++i];
            if (value == "md") {
                format = cwsim::sweep::ReportFormat::Markdown;
            } else if (value == "html") {
                format = cwsim::sweep::ReportFormat::Html;
            } else {
                std::fprintf(stderr,
                             "cwsim-report: unknown format '%s'\n",
                             value.c_str());
                return usage(argv[0]);
            }
        } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(arg, "--connect") == 0 &&
                   i + 1 < argc) {
            connect_path = argv[++i];
        } else if (arg[0] == '-' && arg[1] != '\0') {
            std::fprintf(stderr, "cwsim-report: unknown flag '%s'\n",
                         arg);
            return usage(argv[0]);
        } else {
            inputs.push_back(arg);
        }
    }

    if (diff) {
        // With --connect the daemon's corpus is the CURRENT side and
        // the single positional file is the baseline.
        if (inputs.size() != (connect_path.empty() ? 2u : 1u))
            return usage(argv[0]);
        std::vector<cwsim::sweep::ReportRecord> baseline, current;
        if (!load(inputs[0], baseline))
            return 2;
        if (connect_path.empty() ? !load(inputs[1], current)
                                 : !fetchCorpus(connect_path, current))
            return 2;
        cwsim::sweep::DiffResult result =
            cwsim::sweep::diffRunRecords(baseline, current);
        std::fputs(cwsim::sweep::formatDiff(result).c_str(), stdout);
        return result.clean() ? 0 : 1;
    }

    if (inputs.size() != (connect_path.empty() ? 1u : 0u))
        return usage(argv[0]);
    std::vector<cwsim::sweep::ReportRecord> records;
    if (connect_path.empty() ? !load(inputs[0], records)
                             : !fetchCorpus(connect_path, records))
        return 2;
    std::string report = cwsim::sweep::renderReport(records, format);
    if (out_path.empty()) {
        std::fputs(report.c_str(), stdout);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cwsim-report: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        out << report;
    }
    return 0;
}
