/**
 * @file
 * cwsim-report: render a sweep JSONL file (the run-cache / --json
 * export format) as a markdown or HTML report, or diff two JSONL
 * files field-by-field to flag simulated-stat drift. With --connect
 * the records come from a live cwsimd's shared corpus instead of a
 * file, so a report can be pulled from a running service without
 * touching its cache directory.
 *
 * Exit codes: 0 success (diff clean), 1 drift detected, 2 usage or
 * I/O error. The CI stats-diff job relies on this split to tell
 * "stats changed" apart from "the tool broke".
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "base/str.hh"
#include "mdp/dep_profile.hh"
#include "svc/client.hh"
#include "svc/protocol.hh"
#include "sweep/report.hh"
#include "sweep/run_cache.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--format md|html] [--out PATH] [--top N] "
        "SWEEP.jsonl\n"
        "       %s --diff BASELINE.jsonl CURRENT.jsonl\n"
        "       %s --connect SOCKET [--format md|html] [--out PATH]\n"
        "       %s --connect SOCKET --status\n"
        "       %s --depprof PROFILE.depprof.jsonl [--format md|html]\n"
        "\n"
        "Render a cwsim sweep JSONL file as a report, or compare two\n"
        "sweep files and flag any drift in simulated stats\n"
        "(host-profiling fields are ignored; failed runs compare by\n"
        "fail-kind class, not the host-dependent detail text).\n"
        "\n"
        "  --format md|html  report output format (default: md)\n"
        "  --out PATH        write the report to PATH (default: stdout)\n"
        "  --top N           cap the open-ended tables (hot edges,\n"
        "                    per-PC detail) at N rows, 0 = unlimited\n"
        "                    (default: 20)\n"
        "  --diff            compare two files instead of rendering\n"
        "  --depprof FILE    render a .depprof.jsonl dependence\n"
        "                    profile (validates it first; exit 2 on\n"
        "                    validation errors)\n"
        "  --connect SOCKET  pull the corpus from a running cwsimd\n"
        "                    (Unix socket) instead of a file; may also\n"
        "                    be the CURRENT side of a --diff\n"
        "  --status          with --connect: render a live daemon\n"
        "                    dashboard (uptime, queue, slots, latency\n"
        "                    quantiles, failure counts) and exit\n"
        "  --version         print schema/protocol/build identity\n"
        "  --help            show this message\n",
        argv0, argv0, argv0, argv0, argv0);
    return 2;
}

/** A stats-event field as a double; NaN-tolerant ("nan" quantiles of
 * an empty histogram come over the wire as quoted strings). */
double
statNum(const std::map<std::string, std::string> &ev, const char *key)
{
    auto it = ev.find(key);
    if (it == ev.end())
        return 0;
    return std::strtod(it->second.c_str(), nullptr);
}

std::string
fmtMs(double ms)
{
    if (ms != ms) // NaN: no samples yet
        return "-";
    if (ms >= 1000)
        return cwsim::strfmt("%.2fs", ms / 1000.0);
    return cwsim::strfmt("%.0fms", ms);
}

/**
 * The live dashboard behind --connect --status: one stats round-trip
 * rendered as markdown. Everything shown comes from the daemon's
 * metrics registry (plus the legacy stats fields), so this doubles as
 * a smoke test that the registry snapshot is coherent.
 */
int
renderStatus(const std::string &socketPath, const std::string &outPath)
{
    cwsim::svc::Client client;
    std::string err;
    if (!client.connectUnix(socketPath, &err)) {
        std::fprintf(stderr, "cwsim-report: %s\n", err.c_str());
        return 2;
    }
    std::map<std::string, std::string> ev;
    if (!client.sendLine("{\"cmd\":\"stats\"}", &err) ||
        !client.nextEvent(ev, &err)) {
        std::fprintf(stderr, "cwsim-report: %s\n",
                     err.empty() ? "server closed" : err.c_str());
        return 2;
    }

    double uptimeMs = statNum(ev, "cwsimd_uptime_ms");
    double slots = statNum(ev, "cwsim_pool_slots");
    double busy = statNum(ev, "cwsim_pool_busy");
    double execMs = statNum(ev, "cwsim_pool_exec_ms_total");
    // Slot utilization: occupied slot-time over available slot-time.
    double util = (slots > 0 && uptimeMs > 0)
                      ? 100.0 * execMs / (uptimeMs * slots)
                      : 0;
    double executed = statNum(ev, "cwsimd_runs_executed_total");
    double cacheHits = statNum(ev, "cwsimd_cache_hits_total");
    double served = executed + cacheHits;
    double hitPct = served > 0 ? 100.0 * cacheHits / served : 0;

    std::string md;
    md += cwsim::strfmt("# cwsimd status — %s\n\n",
                        socketPath.c_str());
    md += cwsim::strfmt(
        "- uptime: %.1fs, draining: %s\n", uptimeMs / 1000.0,
        ev.count("draining") ? ev.at("draining").c_str() : "?");
    md += cwsim::strfmt(
        "- clients: %.0f open, %.0f lifetime\n",
        statNum(ev, "cwsimd_sessions_open"),
        statNum(ev, "cwsimd_sessions_total"));
    md += cwsim::strfmt(
        "- queue: %.0f queued, %.0f running; wait p50 %s, p90 %s, "
        "p99 %s\n",
        statNum(ev, "cwsimd_queue_depth"),
        statNum(ev, "cwsimd_runs_running"),
        fmtMs(statNum(ev, "cwsimd_queue_wait_seconds_p50") * 1000)
            .c_str(),
        fmtMs(statNum(ev, "cwsimd_queue_wait_seconds_p90") * 1000)
            .c_str(),
        fmtMs(statNum(ev, "cwsimd_queue_wait_seconds_p99") * 1000)
            .c_str());
    md += cwsim::strfmt(
        "- slots: %.0f busy of %.0f (utilization %.1f%%)\n", busy,
        slots, util);
    md += cwsim::strfmt(
        "- runs: %.0f executed, %.0f cache hits (%.1f%% hit ratio), "
        "%.0f deduped\n",
        executed, cacheHits, hitPct,
        statNum(ev, "cwsimd_dedupe_hits_total"));
    md += cwsim::strfmt(
        "- run latency: p50 %s, p90 %s, p99 %s (n=%.0f)\n",
        fmtMs(statNum(ev, "cwsimd_run_latency_seconds_p50") * 1000)
            .c_str(),
        fmtMs(statNum(ev, "cwsimd_run_latency_seconds_p90") * 1000)
            .c_str(),
        fmtMs(statNum(ev, "cwsimd_run_latency_seconds_p99") * 1000)
            .c_str(),
        statNum(ev, "cwsimd_run_latency_seconds_count"));
    md += cwsim::strfmt("- corpus: %.0f cached record(s)\n",
                        statNum(ev, "cwsimd_cache_size"));
    md += "\n| outcome | count |\n|---|---|\n";
    for (const char *kind :
         {"none", "sim_error", "crash", "timeout", "oom",
          "protocol"}) {
        md += cwsim::strfmt(
            "| %s | %.0f |\n", kind,
            statNum(ev,
                    (std::string("cwsimd_run_results_total_") + kind)
                        .c_str()));
    }

    if (outPath.empty()) {
        std::fputs(md.c_str(), stdout);
    } else {
        std::ofstream out(outPath);
        if (!out) {
            std::fprintf(stderr, "cwsim-report: cannot write %s\n",
                         outPath.c_str());
            return 2;
        }
        out << md;
    }
    return 0;
}

bool
load(const std::string &path,
     std::vector<cwsim::sweep::ReportRecord> &out)
{
    std::string err;
    size_t rejected = 0;
    if (!cwsim::sweep::loadRunRecords(path, out, &err, &rejected)) {
        std::fprintf(stderr, "cwsim-report: %s\n", err.c_str());
        return false;
    }
    if (rejected > 0) {
        std::fprintf(stderr,
                     "cwsim-report: warning: skipped %zu unparseable "
                     "record(s) in %s\n",
                     rejected, path.c_str());
    }
    if (out.empty()) {
        std::fprintf(stderr, "cwsim-report: no parseable records in %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

/**
 * Pull every corpus record from a running cwsimd over its Unix
 * socket. The daemon streams them as corpus_record events — one run
 * record wrapped in an event envelope, which runRecordParse ignores —
 * terminated by corpus_done.
 */
bool
fetchCorpus(const std::string &socketPath,
            std::vector<cwsim::sweep::ReportRecord> &out)
{
    cwsim::svc::Client client;
    std::string err;
    if (!client.connectUnix(socketPath, &err)) {
        std::fprintf(stderr, "cwsim-report: %s\n", err.c_str());
        return false;
    }
    if (!client.sendLine("{\"cmd\":\"corpus\"}", &err)) {
        std::fprintf(stderr, "cwsim-report: %s\n", err.c_str());
        return false;
    }
    size_t rejected = 0;
    std::map<std::string, std::string> ev;
    for (;;) {
        if (!client.nextEvent(ev, &err)) {
            std::fprintf(stderr, "cwsim-report: %s\n",
                         err.empty() ? "server closed mid-corpus"
                                     : err.c_str());
            return false;
        }
        auto kind = ev.find("ev");
        if (kind == ev.end())
            continue;
        if (kind->second == "corpus_done")
            break;
        if (kind->second == "error") {
            auto reason = ev.find("reason");
            std::fprintf(stderr, "cwsim-report: server error: %s\n",
                         reason == ev.end() ? "?"
                                            : reason->second.c_str());
            return false;
        }
        if (kind->second != "corpus_record")
            continue;
        cwsim::sweep::ReportRecord rec;
        if (!cwsim::sweep::runRecordParse(ev, rec.run)) {
            ++rejected;
            continue;
        }
        auto fp = ev.find("fp");
        if (fp != ev.end())
            rec.fp = fp->second;
        auto scale = ev.find("scale");
        if (scale != ev.end())
            rec.scale = std::strtoull(scale->second.c_str(), nullptr,
                                      10);
        out.push_back(std::move(rec));
    }
    if (rejected > 0) {
        std::fprintf(stderr,
                     "cwsim-report: warning: skipped %zu unparseable "
                     "record(s) from %s\n",
                     rejected, socketPath.c_str());
    }
    if (out.empty()) {
        std::fprintf(stderr, "cwsim-report: empty corpus at %s\n",
                     socketPath.c_str());
        return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool diff = false, status = false;
    cwsim::sweep::ReportFormat format =
        cwsim::sweep::ReportFormat::Markdown;
    std::string out_path, connect_path, depprof_path;
    size_t top = 20;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else if (std::strcmp(arg, "--version") == 0) {
            std::printf(
                "%s\n",
                cwsim::svc::versionLine("cwsim-report").c_str());
            return 0;
        } else if (std::strcmp(arg, "--diff") == 0) {
            diff = true;
        } else if (std::strcmp(arg, "--status") == 0) {
            status = true;
        } else if (std::strcmp(arg, "--format") == 0 && i + 1 < argc) {
            std::string value = argv[++i];
            if (value == "md") {
                format = cwsim::sweep::ReportFormat::Markdown;
            } else if (value == "html") {
                format = cwsim::sweep::ReportFormat::Html;
            } else {
                std::fprintf(stderr,
                             "cwsim-report: unknown format '%s'\n",
                             value.c_str());
                return usage(argv[0]);
            }
        } else if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(arg, "--top") == 0 && i + 1 < argc) {
            const char *value = argv[++i];
            char *end = nullptr;
            top = std::strtoull(value, &end, 10);
            if (end == value || *end != '\0') {
                std::fprintf(stderr,
                             "cwsim-report: --top wants a number, "
                             "got '%s'\n", value);
                return usage(argv[0]);
            }
        } else if (std::strcmp(arg, "--depprof") == 0 &&
                   i + 1 < argc) {
            depprof_path = argv[++i];
        } else if (std::strcmp(arg, "--connect") == 0 &&
                   i + 1 < argc) {
            connect_path = argv[++i];
        } else if (arg[0] == '-' && arg[1] != '\0') {
            std::fprintf(stderr, "cwsim-report: unknown flag '%s'\n",
                         arg);
            return usage(argv[0]);
        } else {
            inputs.push_back(arg);
        }
    }

    if (!depprof_path.empty()) {
        if (diff || status || !connect_path.empty() ||
            !inputs.empty()) {
            std::fprintf(stderr,
                         "cwsim-report: --depprof wants a profile "
                         "file and nothing else\n");
            return usage(argv[0]);
        }
        cwsim::mdp::DepProfileFile profile;
        std::string err;
        if (!profile.load(depprof_path, &err) &&
            profile.errors().empty()) {
            // The file itself could not be read.
            std::fprintf(stderr, "cwsim-report: %s\n", err.c_str());
            return 2;
        }
        if (!profile.valid()) {
            for (const std::string &e : profile.errors())
                std::fprintf(stderr, "cwsim-report: %s: %s\n",
                             depprof_path.c_str(), e.c_str());
            std::fprintf(stderr,
                         "cwsim-report: %s failed validation (%zu "
                         "error(s); %zu run block(s) salvaged)\n",
                         depprof_path.c_str(), profile.errors().size(),
                         profile.runs().size());
            return 2;
        }
        std::string report =
            cwsim::sweep::renderDepProfile(profile, format, top);
        if (out_path.empty()) {
            std::fputs(report.c_str(), stdout);
        } else {
            std::ofstream out(out_path);
            if (!out) {
                std::fprintf(stderr, "cwsim-report: cannot write %s\n",
                             out_path.c_str());
                return 2;
            }
            out << report;
        }
        return 0;
    }

    if (status) {
        if (connect_path.empty() || diff || !inputs.empty()) {
            std::fprintf(stderr,
                         "cwsim-report: --status wants --connect "
                         "SOCKET and nothing else\n");
            return usage(argv[0]);
        }
        return renderStatus(connect_path, out_path);
    }

    if (diff) {
        // With --connect the daemon's corpus is the CURRENT side and
        // the single positional file is the baseline.
        if (inputs.size() != (connect_path.empty() ? 2u : 1u))
            return usage(argv[0]);
        std::vector<cwsim::sweep::ReportRecord> baseline, current;
        if (!load(inputs[0], baseline))
            return 2;
        if (connect_path.empty() ? !load(inputs[1], current)
                                 : !fetchCorpus(connect_path, current))
            return 2;
        cwsim::sweep::DiffResult result =
            cwsim::sweep::diffRunRecords(baseline, current);
        std::fputs(cwsim::sweep::formatDiff(result).c_str(), stdout);
        return result.clean() ? 0 : 1;
    }

    if (inputs.size() != (connect_path.empty() ? 1u : 0u))
        return usage(argv[0]);
    std::vector<cwsim::sweep::ReportRecord> records;
    if (connect_path.empty() ? !load(inputs[0], records)
                             : !fetchCorpus(connect_path, records))
        return 2;
    std::string report =
        cwsim::sweep::renderReport(records, format, top);
    if (out_path.empty()) {
        std::fputs(report.c_str(), stdout);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cwsim-report: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        out << report;
    }
    return 0;
}
