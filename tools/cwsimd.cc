/**
 * @file
 * cwsimd: the multi-tenant sweep daemon (see src/svc/server.hh).
 *
 * One long-running process owns a pool of isolated worker slots and a
 * shared run cache; any number of cwsim-client / cwsim-report
 * processes connect over the Unix socket (or loopback TCP), submit
 * sweep specs, and stream results. SIGTERM/SIGINT drain gracefully:
 * admitted runs finish and land in the corpus, then the process exits
 * 0.
 *
 *   cwsimd --socket /tmp/cwsimd.sock --cache-dir /var/cwsim \
 *          --jobs 8 --timeout 120 --mem-limit 4096
 *
 * Flags mirror the bench CLI where they mean the same thing (--jobs,
 * --scale, --cache-dir with CWSIM_CACHE_DIR, --timeout, --mem-limit,
 * --retries).
 */

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/str.hh"
#include "sweep/sweep.hh"
#include "svc/log.hh"
#include "svc/protocol.hh"
#include "svc/server.hh"

namespace
{

cwsim::svc::Server *g_server = nullptr;

void
onStopSignal(int)
{
    if (g_server)
        g_server->requestStop(); // one async-signal-safe write
}

int
usage(const char *argv0, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s --socket PATH [options]\n"
        "\n"
        "  --socket PATH    Unix-domain socket to listen on (required)\n"
        "  --tcp PORT       also listen on 127.0.0.1:PORT\n"
        "  --cache-dir D    shared run-cache directory (default:\n"
        "                   CWSIM_CACHE_DIR env, else .cwsim-cache)\n"
        "  --jobs N         worker slots (default: CWSIM_JOBS env,\n"
        "                   else all hardware threads)\n"
        "  --scale N        default dynamic-instruction target for\n"
        "                   specs that omit one (default: CWSIM_SCALE\n"
        "                   env, else 80000)\n"
        "  --timeout S      wall-clock deadline per run, seconds\n"
        "  --mem-limit MB   address-space cap per run, MiB\n"
        "  --retries N      retries for host-level run failures\n"
        "  --inline         execute runs on the server thread instead\n"
        "                   of forked slots (tests; no containment)\n"
        "  --max-queued N   bounded admission queue (default 1024)\n"
        "  --quota N        per-client in-flight run cap (default 512)\n"
        "  --metrics-file P dump Prometheus text exposition to P\n"
        "                   periodically (atomic rename)\n"
        "  --metrics-interval S\n"
        "                   seconds between dumps (default 5)\n"
        "  --trace-events P write per-run lifecycle spans as Chrome\n"
        "                   trace-event JSON to P (Perfetto-loadable)\n"
        "  --version        print schema/protocol/build identity\n"
        "  --help           this message\n",
        argv0);
    return out == stdout ? 0 : 2;
}

uint64_t
parseU64(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    uint64_t v = std::strtoull(text, &end, 10);
    if (*end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "cwsimd: %s: not a number: '%s'\n", flag,
                     text);
        std::exit(2);
    }
    return v;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    cwsim::svc::ServerOptions opts;
    opts.slots = 0;
    if (const char *dir = std::getenv("CWSIM_CACHE_DIR"); dir && *dir)
        opts.cacheDir = dir;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "cwsimd: %s requires a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            return usage(argv[0], stdout);
        } else if (arg == "--version") {
            std::printf("%s\n",
                        cwsim::svc::versionLine("cwsimd").c_str());
            return 0;
        } else if (arg == "--metrics-file") {
            opts.metricsPath = value("--metrics-file");
        } else if (arg == "--metrics-interval") {
            opts.metricsPeriodSec =
                std::strtod(value("--metrics-interval"), nullptr);
            if (opts.metricsPeriodSec <= 0) {
                std::fprintf(stderr, "cwsimd: --metrics-interval "
                                     "must be positive\n");
                return 2;
            }
        } else if (arg == "--trace-events") {
            opts.traceEventsPath = value("--trace-events");
        } else if (arg == "--socket") {
            opts.socketPath = value("--socket");
        } else if (arg == "--tcp") {
            opts.tcpPort = static_cast<uint16_t>(
                parseU64("--tcp", value("--tcp")));
        } else if (arg == "--cache-dir") {
            opts.cacheDir = value("--cache-dir");
        } else if (arg == "--jobs") {
            opts.slots = static_cast<unsigned>(
                parseU64("--jobs", value("--jobs")));
        } else if (arg == "--scale") {
            opts.defaultScale = parseU64("--scale", value("--scale"));
        } else if (arg == "--timeout") {
            opts.timeoutSec =
                std::strtod(value("--timeout"), nullptr);
        } else if (arg == "--mem-limit") {
            opts.memLimitMb =
                parseU64("--mem-limit", value("--mem-limit"));
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(
                parseU64("--retries", value("--retries")));
        } else if (arg == "--inline") {
            opts.isolate = false;
        } else if (arg == "--max-queued") {
            opts.limits.maxQueued =
                parseU64("--max-queued", value("--max-queued"));
        } else if (arg == "--quota") {
            opts.limits.maxClientInflight =
                parseU64("--quota", value("--quota"));
        } else {
            std::fprintf(stderr, "cwsimd: unknown flag '%s'\n",
                         arg.c_str());
            return usage(argv[0], stderr);
        }
    }
    if (opts.socketPath.empty())
        return usage(argv[0], stderr);
    opts.slots = cwsim::sweep::resolveJobs(opts.slots);

    cwsim::svc::Server server(opts);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "cwsimd: %s\n", err.c_str());
        return 2;
    }

    g_server = &server;
    struct sigaction sa{};
    sa.sa_handler = onStopSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    // A lost controlling terminal should drain, not kill: admitted
    // runs still land in the shared corpus.
    ::sigaction(SIGHUP, &sa, nullptr);

    cwsim::svc::logLine(
        0, cwsim::strfmt(
               "cwsimd: listening on %s (%u slot(s), cache %s)",
               opts.socketPath.c_str(), opts.slots,
               opts.cacheDir.c_str()));
    int rc = server.run();
    cwsim::svc::logLine(0, "cwsimd: drained, exiting");
    g_server = nullptr;
    return rc;
}
